//! Specification-level ("conceptual") evaluation of MFAs.
//!
//! This mirrors the paper's description of how an MFA is evaluated
//! (Example 4.1 and Fig. 4): the selecting NFA walks the tree top-down,
//! associating sets of states with nodes; whenever a state annotated with an
//! AFA is assumed at a node, the AFA is evaluated on the subtree rooted
//! there; a node belongs to the answer iff it is associated with a final
//! state (whose AFA, if any, holds).
//!
//! Like the paper's conceptual evaluation — and unlike HyPE — this may
//! traverse a subtree multiple times (once per pending filter). It exists as
//! a readable, obviously-correct oracle for differential testing of HyPE
//! and of the rewriting algorithm.

use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};

use smoqe_xml::{NodeId, XmlTree};

use crate::afa::{Afa, AfaId, AfaState, AfaStateId, FinalPredicate};
use crate::label_map::LabelMap;
use crate::mfa::Mfa;
use crate::nfa::StateId;

/// Evaluates `mfa` at the root of `tree` (the common case `r[[M]]`).
pub fn evaluate_mfa(tree: &XmlTree, mfa: &Mfa) -> BTreeSet<NodeId> {
    evaluate_mfa_at(tree, tree.root(), mfa)
}

/// Evaluates `mfa` at context node `context` of `tree`, returning `n[[M]]`.
pub fn evaluate_mfa_at(tree: &XmlTree, context: NodeId, mfa: &Mfa) -> BTreeSet<NodeId> {
    let label_map = LabelMap::new(mfa, tree.labels());
    let mut afa_cache: HashMap<(AfaId, NodeId), bool> = HashMap::new();

    // Reachability over (node, state) pairs. A pair is *admissible* when the
    // state's AFA (if any) evaluates to true at the node; only admissible
    // pairs may take ε- or label transitions, exactly as in the paper where
    // states whose AFA failed are removed from the candidate-answer graph.
    let mut visited: HashSet<(NodeId, StateId)> = HashSet::new();
    let mut queue: VecDeque<(NodeId, StateId)> = VecDeque::new();
    let mut answers: BTreeSet<NodeId> = BTreeSet::new();

    let start = mfa.nfa().start();
    if admissible(tree, context, start, mfa, &label_map, &mut afa_cache) {
        visited.insert((context, start));
        queue.push_back((context, start));
    }

    while let Some((node, state)) = queue.pop_front() {
        let st = mfa.nfa().state(state);
        if st.is_final {
            answers.insert(node);
        }
        // ε-transitions stay on the same node.
        for &next in &st.eps {
            if !visited.contains(&(node, next))
                && admissible(tree, node, next, mfa, &label_map, &mut afa_cache)
            {
                visited.insert((node, next));
                queue.push_back((node, next));
            }
        }
        // Label transitions move to children.
        for &(transition, target) in &st.trans {
            for &child in tree.children(node) {
                if label_map.matches(transition, tree.label(child))
                    && !visited.contains(&(child, target))
                    && admissible(tree, child, target, mfa, &label_map, &mut afa_cache)
                {
                    visited.insert((child, target));
                    queue.push_back((child, target));
                }
            }
        }
    }
    answers
}

/// A `(node, state)` pair is admissible iff the state's AFA annotation (if
/// any) evaluates to true at the node.
fn admissible(
    tree: &XmlTree,
    node: NodeId,
    state: StateId,
    mfa: &Mfa,
    label_map: &LabelMap,
    cache: &mut HashMap<(AfaId, NodeId), bool>,
) -> bool {
    match mfa.nfa().state(state).afa {
        None => true,
        Some(afa_id) => evaluate_afa(tree, node, mfa.afa(afa_id), afa_id, label_map, cache),
    }
}

/// Evaluates one AFA at `node`, with memoization across calls.
pub fn evaluate_afa(
    tree: &XmlTree,
    node: NodeId,
    afa: &Afa,
    afa_id: AfaId,
    label_map: &LabelMap,
    cache: &mut HashMap<(AfaId, NodeId), bool>,
) -> bool {
    if let Some(&v) = cache.get(&(afa_id, node)) {
        return v;
    }
    let mut in_progress = HashSet::new();
    let v = afa_value(tree, node, afa, afa.start(), label_map, &mut in_progress);
    cache.insert((afa_id, node), v);
    v
}

/// The Boolean variable `X(node, state)` of the paper, computed recursively.
///
/// ε-cycles between operator states (possible only for degenerate queries
/// such as `(.)*` inside a filter) are broken by treating a revisited
/// `(node, state)` pair as `false` — the least fix-point, which is the
/// correct semantics for the reflexive closure.
fn afa_value(
    tree: &XmlTree,
    node: NodeId,
    afa: &Afa,
    state: AfaStateId,
    label_map: &LabelMap,
    in_progress: &mut HashSet<(NodeId, AfaStateId)>,
) -> bool {
    if !in_progress.insert((node, state)) {
        return false;
    }
    let result = match afa.state(state) {
        AfaState::Final(pred) => match pred {
            FinalPredicate::True => true,
            FinalPredicate::False => false,
            FinalPredicate::TextEq(value) => tree.text(node) == Some(value.as_str()),
        },
        AfaState::Not(inner) => !afa_value(tree, node, afa, *inner, label_map, in_progress),
        AfaState::And(children) => children
            .iter()
            .all(|&c| afa_value(tree, node, afa, c, label_map, in_progress)),
        AfaState::Or(children) => children
            .iter()
            .any(|&c| afa_value(tree, node, afa, c, label_map, in_progress)),
        AfaState::Trans(transition, target) => tree.children(node).iter().any(|&child| {
            label_map.matches(*transition, tree.label(child))
                && afa_value(tree, child, afa, *target, label_map, in_progress)
        }),
    };
    in_progress.remove(&(node, state));
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile_query;
    use smoqe_xpath::parse_path;
    use smoqe_xml::XmlTreeBuilder;

    /// The tree of the paper's Fig. 4.
    fn fig4_tree() -> (XmlTree, Vec<NodeId>) {
        let mut b = XmlTreeBuilder::new();
        let n1 = b.root("hospital");
        let n2 = b.child(n1, "patient");
        let n3 = b.child(n2, "parent");
        let n4 = b.child(n3, "patient");
        let n5 = b.child(n4, "parent");
        let n6 = b.child(n5, "patient");
        let rec_a = b.child(n6, "record");
        b.child_with_text(rec_a, "diagnosis", "lung disease");
        let n7 = b.child(n2, "record");
        let n8 = b.child_with_text(n7, "diagnosis", "lung disease");
        let n9 = b.child(n1, "patient");
        let n10 = b.child(n9, "parent");
        let n11 = b.child(n10, "patient");
        let n12 = b.child(n11, "record");
        let n13 = b.child_with_text(n12, "diagnosis", "heart disease");
        let n14 = b.child(n9, "record");
        let n15 = b.child_with_text(n14, "diagnosis", "brain disease");
        let _ = (n5, n8, n13, n15);
        (b.finish(), vec![n1, n2, n4, n6, n9, n11])
    }
    use smoqe_xml::XmlTree;

    #[test]
    fn fig4_evaluation_of_q0_selects_nodes_9_and_11() {
        // Q0 finds patients having an ancestor-or-self chain to a heart
        // disease record: in Fig. 4 these are nodes 9 and 11 (our n9, n11).
        let (tree, nodes) = fig4_tree();
        let q = parse_path(
            "(patient/parent)*/patient[(parent/patient)*/record/diagnosis[text()='heart disease']]",
        )
        .unwrap();
        let mfa = compile_query(&q);
        let result = evaluate_mfa(&tree, &mfa);
        let expected: BTreeSet<_> = [nodes[4], nodes[5]].into_iter().collect();
        assert_eq!(result, expected);
    }

    #[test]
    fn afa_memoization_is_consistent() {
        let (tree, _) = fig4_tree();
        let q = parse_path("(patient/parent)*/patient[record]").unwrap();
        let mfa = compile_query(&q);
        let first = evaluate_mfa(&tree, &mfa);
        let second = evaluate_mfa(&tree, &mfa);
        assert_eq!(first, second);
    }

    #[test]
    fn evaluation_from_inner_context_node() {
        let (tree, nodes) = fig4_tree();
        let q = parse_path("parent/patient[record/diagnosis/text()='heart disease']").unwrap();
        let mfa = compile_query(&q);
        // From patient node 9, its child parent/patient (node 11) qualifies.
        let from_n9 = evaluate_mfa_at(&tree, nodes[4], &mfa);
        assert_eq!(from_n9, [nodes[5]].into_iter().collect());
        // From patient node 2 nothing qualifies (descendants have lung disease).
        let from_n2 = evaluate_mfa_at(&tree, nodes[1], &mfa);
        assert!(from_n2.is_empty());
    }

    #[test]
    fn negated_filter_with_afa() {
        let (tree, nodes) = fig4_tree();
        let q = parse_path("patient[not(record/diagnosis/text()='brain disease')]").unwrap();
        let mfa = compile_query(&q);
        let result = evaluate_mfa(&tree, &mfa);
        // n2 has lung disease (passes), n9 has brain disease (fails).
        assert_eq!(result, [nodes[1]].into_iter().collect());
    }

    #[test]
    fn false_final_predicate_never_matches() {
        let mut b = XmlTreeBuilder::new();
        let root = b.root("a");
        b.child_with_text(root, "b", "x");
        let tree = b.finish();

        use crate::mfa::{AfaBuilder, MfaBuilder};
        use crate::nfa::Transition;
        let mut mb = MfaBuilder::new();
        let lb = mb.intern_label("b");
        let s0 = mb.new_state();
        let s1 = mb.new_state();
        mb.add_label_transition(s0, Transition::Label(lb), s1);
        mb.set_final(s1);
        let mut afab = AfaBuilder::new();
        let fin = afab.add(AfaState::Final(FinalPredicate::False));
        let afa = mb.add_afa(afab.finish(fin));
        mb.set_afa(s1, afa);
        mb.set_start(s0);
        let mfa = mb.finish();
        assert!(evaluate_mfa(&tree, &mfa).is_empty());
    }

    #[test]
    fn degenerate_epsilon_star_inside_filter_terminates() {
        let (tree, _) = fig4_tree();
        let q = parse_path("patient[(.)*/record]").unwrap();
        let mfa = compile_query(&q);
        // Must terminate and agree with the reference evaluator.
        let expected = smoqe_xpath::evaluate(&tree, tree.root(), &q);
        assert_eq!(evaluate_mfa(&tree, &mfa), expected);
    }
}
