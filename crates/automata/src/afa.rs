//! Alternating finite automata (AFA) representing `Xreg` filters.
//!
//! Following Section 4 of the paper, an AFA `(K, Σ, δ, s, F)` partitions its
//! states into
//!
//! * **operator states** (`Kop`) marked AND, OR or NOT, whose transition
//!   function is only defined for ε and whose value combines the values of
//!   their successors,
//! * **transition states** (`Kl`), defined for a single label, moving to a
//!   child of the current node carrying that label,
//! * **final states** (`F`), optionally annotated with a predicate of the
//!   form `text() = 'c'`.
//!
//! The value of an AFA at a node `n` is the Boolean variable `X(n, s)` of
//! the start state `s`, computed exactly as in the paper's Example 4.1:
//! OR/AND/NOT combine successor variables at the same node; a transition
//! state on label `A` is the disjunction of the variables of its successor
//! over all `A`-labelled children (false if there is none); a final state is
//! the value of its predicate at the node.

/// Identifier of an AFA within an MFA (the paper's names `X_i`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct AfaId(pub u32);

impl AfaId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a state inside one AFA.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct AfaStateId(pub u32);

impl AfaStateId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The predicate optionally carried by an AFA final state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FinalPredicate {
    /// No predicate: the final state is unconditionally true at any node.
    True,
    /// `text() = 'c'`: true iff the node's PCDATA equals the constant.
    TextEq(String),
    /// Never true. Produced by the view-rewriting algorithm when a filter
    /// tests the text of a view element type that cannot carry text, so the
    /// predicate can never hold on any view instance.
    False,
}

/// One state of an AFA.
#[derive(Debug, Clone)]
pub enum AfaState {
    /// AND operator state: true iff *all* successors are true (ε-moves).
    And(Vec<AfaStateId>),
    /// OR operator state: true iff *some* successor is true (ε-moves).
    Or(Vec<AfaStateId>),
    /// NOT operator state: true iff its single successor is false (ε-move).
    Not(AfaStateId),
    /// Transition state: true iff some child matching the transition makes
    /// the successor true at that child.
    Trans(crate::nfa::Transition, AfaStateId),
    /// Final state with its predicate.
    Final(FinalPredicate),
}

/// An alternating finite automaton for one filter.
#[derive(Debug, Clone)]
pub struct Afa {
    states: Vec<AfaState>,
    start: AfaStateId,
}

impl Afa {
    /// Creates an AFA from raw parts. Used by [`crate::MfaBuilder`].
    pub(crate) fn from_parts(states: Vec<AfaState>, start: AfaStateId) -> Self {
        Afa { states, start }
    }

    /// The start state.
    #[inline]
    pub fn start(&self) -> AfaStateId {
        self.start
    }

    /// Number of states.
    #[inline]
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// `true` if the AFA has no states.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Access to a state.
    #[inline]
    pub fn state(&self, id: AfaStateId) -> &AfaState {
        &self.states[id.index()]
    }

    /// Iterates over `(id, state)` pairs.
    pub fn states(&self) -> impl Iterator<Item = (AfaStateId, &AfaState)> {
        self.states
            .iter()
            .enumerate()
            .map(|(i, s)| (AfaStateId(i as u32), s))
    }

    /// Number of transitions, counting each operator-state successor and
    /// each labelled transition once.
    pub fn transition_count(&self) -> usize {
        self.states
            .iter()
            .map(|s| match s {
                AfaState::And(v) | AfaState::Or(v) => v.len(),
                AfaState::Not(_) | AfaState::Trans(..) => 1,
                AfaState::Final(_) => 0,
            })
            .sum()
    }

    /// The labels (in the owning MFA's interner) that can start a transition
    /// from any state of this AFA. Used by HyPE to decide whether descending
    /// into a child can possibly advance a pending filter.
    pub fn transition_labels(&self) -> Vec<crate::nfa::Transition> {
        let mut out = Vec::new();
        for s in &self.states {
            if let AfaState::Trans(t, _) = s {
                if !out.contains(t) {
                    out.push(*t);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nfa::Transition;

    /// Hand-builds the AFA of the paper's Fig. 3 skeleton:
    /// `sA1 = OR(sA2, sA5)`, `sA2 --parent--> sA3 --patient--> sA4`,
    /// `sA4 = OR(sA2, sA5)`, `sA5 --record--> sA6 --diagnosis--> sA7`,
    /// `sA7` final with `text()='heart disease'`.
    fn fig3_afa() -> Afa {
        // Labels: 0=parent, 1=patient, 2=record, 3=diagnosis.
        let states = vec![
            AfaState::Or(vec![AfaStateId(1), AfaStateId(4)]), // sA1
            AfaState::Trans(Transition::Label(0), AfaStateId(2)), // sA2
            AfaState::Trans(Transition::Label(1), AfaStateId(3)), // sA3
            AfaState::Or(vec![AfaStateId(1), AfaStateId(4)]), // sA4
            AfaState::Trans(Transition::Label(2), AfaStateId(5)), // sA5
            AfaState::Trans(Transition::Label(3), AfaStateId(6)), // sA6
            AfaState::Final(FinalPredicate::TextEq("heart disease".to_owned())), // sA7
        ];
        Afa::from_parts(states, AfaStateId(0))
    }

    #[test]
    fn counts_and_access() {
        let afa = fig3_afa();
        assert_eq!(afa.len(), 7);
        assert_eq!(afa.start(), AfaStateId(0));
        assert_eq!(afa.transition_count(), 2 + 1 + 1 + 2 + 1 + 1);
        assert!(matches!(afa.state(AfaStateId(6)), AfaState::Final(_)));
    }

    #[test]
    fn transition_labels_are_deduplicated() {
        let afa = fig3_afa();
        let labels = afa.transition_labels();
        assert_eq!(labels.len(), 4);
        assert!(labels.contains(&Transition::Label(0)));
        assert!(labels.contains(&Transition::Label(3)));
    }

    #[test]
    fn final_predicates_compare() {
        assert_eq!(FinalPredicate::True, FinalPredicate::True);
        assert_ne!(
            FinalPredicate::TextEq("a".to_owned()),
            FinalPredicate::TextEq("b".to_owned())
        );
        assert_ne!(FinalPredicate::True, FinalPredicate::False);
    }
}
