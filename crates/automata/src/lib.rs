//! # smoqe-automata
//!
//! Mixed Finite State Automata (MFA) — the intermediate representation the
//! paper introduces in Section 4 to represent rewritten regular XPath
//! queries without the exponential blow-up of an explicit `Xreg` rewriting
//! (Corollary 3.3).
//!
//! An MFA is a *selecting* nondeterministic finite automaton (NFA) whose
//! states may be annotated (the partial mapping `λ`) with *alternating*
//! finite automata (AFA) representing the query's filters. The NFA spells
//! out the data-selection paths; every AFA evaluates a filter at the node
//! where its annotated state is assumed:
//!
//! * AFA **operator states** (AND / OR / NOT) only have ε-transitions and
//!   combine the values of their successors,
//! * AFA **transition states** consume one child step on a label,
//! * AFA **final states** optionally carry a `text() = 'c'` predicate.
//!
//! The crate provides:
//!
//! * the automaton data structures ([`Mfa`], [`nfa::Nfa`], [`afa::Afa`]) and
//!   a builder API ([`MfaBuilder`]) used both by the query compiler here and
//!   by the view-rewriting algorithm in `smoqe-rewrite`,
//! * the `Xreg` → MFA compiler ([`compile_query`], Theorem 4.1),
//! * a specification-level MFA evaluator ([`naive::evaluate_mfa`]) that
//!   mirrors the paper's "conceptual evaluation" (Fig. 4) and serves as the
//!   correctness oracle for the efficient HyPE algorithm in `smoqe-hype`,
//! * the dense, bitset-based **execution IR** ([`CompiledMfa`], module
//!   [`compiled`]): the builder [`Mfa`] above is the *construction*
//!   representation that the compiler and the view rewriter grow state by
//!   state; [`CompiledMfa::new`] flattens it once — global AFA-state
//!   numbering, per-label transition columns, precomputed ε-/operator
//!   closures — into the form every `smoqe-hype` engine actually runs on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod afa;
pub mod compile;
pub mod compiled;
pub mod label_map;
pub mod mfa;
pub mod naive;
pub mod nfa;
pub mod optimize;

pub use afa::{Afa, AfaId, AfaState, AfaStateId, FinalPredicate};
pub use compile::{compile_filter, compile_path_afa, compile_path_into, compile_pred_states, compile_query};
pub use compiled::{ColumnMap, CompiledAfaState, CompiledMfa, CompiledMfaStats, ANY_LABEL};
pub use label_map::LabelMap;
pub use mfa::{AfaBuilder, Mfa, MfaBuilder, MfaStats};
pub use naive::{evaluate_mfa, evaluate_mfa_at};
pub use optimize::{optimize_mfa, wildcard_transition_count, OptimizeStats};
pub use nfa::{Nfa, StateId, Transition};
