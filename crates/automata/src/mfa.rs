//! The mixed finite state automaton `M = (Ns, A)` and its builder.
//!
//! An MFA couples a selecting NFA `Ns` with a set `A` of named AFAs; the
//! NFA's partial mapping `λ` annotates states with AFA names (Section 4).
//! MFAs are produced either by compiling an `Xreg` query directly
//! ([`crate::compile_query`], Theorem 4.1) or by the view-rewriting
//! algorithm of `smoqe-rewrite` (Theorem 5.1), and are consumed by the
//! naive evaluator in this crate and by HyPE in `smoqe-hype`.

use smoqe_xml::LabelInterner;

use crate::afa::{Afa, AfaId, AfaState, AfaStateId, FinalPredicate};
use crate::nfa::{Nfa, NfaState, StateId, Transition};

/// A mixed finite state automaton: selecting NFA + named AFAs + the label
/// interner giving meaning to transition label ids.
#[derive(Debug, Clone)]
pub struct Mfa {
    nfa: Nfa,
    afas: Vec<Afa>,
    labels: LabelInterner,
}

/// Size statistics of an MFA, used to verify the `O(|Q||σ||DV|)` bound of
/// Theorem 5.1 experimentally (bench `rewrite_complexity`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MfaStats {
    /// Number of NFA states.
    pub nfa_states: usize,
    /// Number of NFA transitions (ε and labelled).
    pub nfa_transitions: usize,
    /// Number of AFAs (distinct filter automata).
    pub afa_count: usize,
    /// Total number of AFA states across all AFAs.
    pub afa_states: usize,
    /// Total number of AFA transitions across all AFAs.
    pub afa_transitions: usize,
}

impl MfaStats {
    /// The size `|M|`: states plus transitions of both layers.
    pub fn size(&self) -> usize {
        self.nfa_states + self.nfa_transitions + self.afa_states + self.afa_transitions
    }
}

impl Mfa {
    /// The selecting NFA.
    #[inline]
    pub fn nfa(&self) -> &Nfa {
        &self.nfa
    }

    /// Consumes the MFA, returning only its selecting NFA (test helper).
    pub fn into_nfa(self) -> Nfa {
        self.nfa
    }

    /// The AFA bound to `id`.
    #[inline]
    pub fn afa(&self, id: AfaId) -> &Afa {
        &self.afas[id.index()]
    }

    /// All AFAs, indexed by [`AfaId`].
    pub fn afas(&self) -> &[Afa] {
        &self.afas
    }

    /// The label interner used by this automaton's transitions.
    #[inline]
    pub fn labels(&self) -> &LabelInterner {
        &self.labels
    }

    /// Size statistics.
    pub fn stats(&self) -> MfaStats {
        MfaStats {
            nfa_states: self.nfa.len(),
            nfa_transitions: self.nfa.transition_count(),
            afa_count: self.afas.len(),
            afa_states: self.afas.iter().map(Afa::len).sum(),
            afa_transitions: self.afas.iter().map(Afa::transition_count).sum(),
        }
    }

    /// The size `|M|` (states + transitions across both layers).
    pub fn size(&self) -> usize {
        self.stats().size()
    }
}

/// Builder used by the query compiler and the view-rewriting algorithm to
/// assemble an MFA state by state.
#[derive(Debug, Default)]
pub struct MfaBuilder {
    states: Vec<NfaState>,
    afas: Vec<Afa>,
    labels: LabelInterner,
    start: Option<StateId>,
}

impl MfaBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder whose label interner is pre-seeded (e.g. with the
    /// labels of a DTD) so that label ids are stable across automata.
    pub fn with_labels(labels: LabelInterner) -> Self {
        MfaBuilder {
            states: Vec::new(),
            afas: Vec::new(),
            labels,
            start: None,
        }
    }

    /// Interns a label, returning the id used in [`Transition::Label`].
    pub fn intern_label(&mut self, name: &str) -> u32 {
        self.labels.intern(name).0
    }

    /// Read access to the interner.
    pub fn labels(&self) -> &LabelInterner {
        &self.labels
    }

    /// Adds a fresh NFA state with no transitions.
    pub fn new_state(&mut self) -> StateId {
        let id = StateId(self.states.len() as u32);
        self.states.push(NfaState::default());
        id
    }

    /// Number of NFA states created so far.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Adds an ε-transition `from → to`.
    pub fn add_eps(&mut self, from: StateId, to: StateId) {
        let eps = &mut self.states[from.index()].eps;
        if !eps.contains(&to) {
            eps.push(to);
        }
    }

    /// Adds a labelled transition `from --t--> to`.
    pub fn add_label_transition(&mut self, from: StateId, t: Transition, to: StateId) {
        let trans = &mut self.states[from.index()].trans;
        if !trans.contains(&(t, to)) {
            trans.push((t, to));
        }
    }

    /// Marks `state` as final.
    pub fn set_final(&mut self, state: StateId) {
        self.states[state.index()].is_final = true;
    }

    /// Annotates `state` with an AFA (the mapping `λ`).
    ///
    /// # Panics
    /// Panics if the state already carries a different AFA — the paper's
    /// definition allows at most one annotation per state, and both the
    /// compiler and the rewriter always allocate a fresh state per filter.
    pub fn set_afa(&mut self, state: StateId, afa: AfaId) {
        let slot = &mut self.states[state.index()].afa;
        assert!(
            slot.is_none() || *slot == Some(afa),
            "state {state:?} already annotated with a different AFA"
        );
        *slot = Some(afa);
    }

    /// Registers a complete AFA, returning its name/id.
    pub fn add_afa(&mut self, afa: Afa) -> AfaId {
        let id = AfaId(self.afas.len() as u32);
        self.afas.push(afa);
        id
    }

    /// Sets the start state of the selecting NFA.
    pub fn set_start(&mut self, state: StateId) {
        self.start = Some(state);
    }

    /// Finalizes the builder.
    ///
    /// # Panics
    /// Panics if no start state was set or no state was created.
    pub fn finish(self) -> Mfa {
        let start = self.start.expect("MfaBuilder::finish called without a start state");
        assert!(!self.states.is_empty(), "MFA must have at least one state");
        Mfa {
            nfa: Nfa::from_parts(self.states, start),
            afas: self.afas,
            labels: self.labels,
        }
    }
}

/// Builder for a single AFA. Operator states whose successors are not yet
/// known (loops created by Kleene stars) can be allocated as placeholders
/// and patched afterwards.
#[derive(Debug, Default)]
pub struct AfaBuilder {
    states: Vec<AfaState>,
}

impl AfaBuilder {
    /// Creates an empty AFA builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a state, returning its id.
    pub fn add(&mut self, state: AfaState) -> AfaStateId {
        let id = AfaStateId(self.states.len() as u32);
        self.states.push(state);
        id
    }

    /// Adds an empty OR placeholder to be patched later (used to tie the
    /// knot of Kleene-star loops).
    pub fn placeholder(&mut self) -> AfaStateId {
        self.add(AfaState::Or(Vec::new()))
    }

    /// Replaces the state stored at `id`.
    pub fn patch(&mut self, id: AfaStateId, state: AfaState) {
        self.states[id.index()] = state;
    }

    /// Convenience: a final state with no predicate.
    pub fn add_true_final(&mut self) -> AfaStateId {
        self.add(AfaState::Final(FinalPredicate::True))
    }

    /// Number of states created so far.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// `true` if no states were created.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Finalizes the AFA with `start` as its start state.
    pub fn finish(self, start: AfaStateId) -> Afa {
        assert!(
            start.index() < self.states.len(),
            "AFA start state out of range"
        );
        Afa::from_parts(self.states, start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assembles_an_mfa() {
        let mut b = MfaBuilder::new();
        let s0 = b.new_state();
        let s1 = b.new_state();
        let a = b.intern_label("a");
        b.add_label_transition(s0, Transition::Label(a), s1);
        b.set_final(s1);

        let mut afab = AfaBuilder::new();
        let f = afab.add_true_final();
        let t = afab.add(AfaState::Trans(Transition::Label(a), f));
        let afa_id = b.add_afa(afab.finish(t));
        b.set_afa(s1, afa_id);
        b.set_start(s0);

        let mfa = b.finish();
        assert_eq!(mfa.nfa().len(), 2);
        assert_eq!(mfa.afas().len(), 1);
        assert_eq!(mfa.nfa().state(s1).afa, Some(afa_id));
        let stats = mfa.stats();
        assert_eq!(stats.nfa_states, 2);
        assert_eq!(stats.afa_states, 2);
        assert!(stats.size() >= 5);
    }

    #[test]
    fn duplicate_transitions_are_not_stored_twice() {
        let mut b = MfaBuilder::new();
        let s0 = b.new_state();
        let s1 = b.new_state();
        b.add_eps(s0, s1);
        b.add_eps(s0, s1);
        let a = b.intern_label("a");
        b.add_label_transition(s0, Transition::Label(a), s1);
        b.add_label_transition(s0, Transition::Label(a), s1);
        b.set_start(s0);
        let mfa = b.finish();
        assert_eq!(mfa.nfa().transition_count(), 2);
    }

    #[test]
    #[should_panic(expected = "without a start state")]
    fn finish_without_start_panics() {
        let mut b = MfaBuilder::new();
        b.new_state();
        b.finish();
    }

    #[test]
    #[should_panic(expected = "different AFA")]
    fn conflicting_afa_annotation_panics() {
        let mut b = MfaBuilder::new();
        let s = b.new_state();
        let mut a1 = AfaBuilder::new();
        let f1 = a1.add_true_final();
        let id1 = b.add_afa(a1.finish(f1));
        let mut a2 = AfaBuilder::new();
        let f2 = a2.add_true_final();
        let id2 = b.add_afa(a2.finish(f2));
        b.set_afa(s, id1);
        b.set_afa(s, id2);
    }

    #[test]
    fn placeholder_patching() {
        let mut afab = AfaBuilder::new();
        let loop_head = afab.placeholder();
        let fin = afab.add_true_final();
        let body = afab.add(AfaState::Trans(Transition::Any, loop_head));
        afab.patch(loop_head, AfaState::Or(vec![fin, body]));
        let afa = afab.finish(loop_head);
        assert_eq!(afa.len(), 3);
        assert!(matches!(afa.state(loop_head), AfaState::Or(v) if v.len() == 2));
    }

    #[test]
    fn with_labels_preserves_preseeded_ids() {
        let mut interner = LabelInterner::new();
        let pre = interner.intern("patient");
        let mut b = MfaBuilder::with_labels(interner);
        assert_eq!(b.intern_label("patient"), pre.0);
        let s = b.new_state();
        b.set_start(s);
        let mfa = b.finish();
        assert_eq!(mfa.labels().get("patient"), Some(pre));
    }
}
