//! The selecting NFA `Ns` of an MFA.
//!
//! `Ns = (Ks, Σs, δs, s, F, λ)` — states, alphabet, transition function,
//! start state, final states, and the partial mapping `λ` from states to AFA
//! names (Section 4). Transitions move from a node to one of its *children*
//! whose label matches; ε-transitions stay on the current node.

use crate::afa::AfaId;

/// Identifier of a state of the selecting NFA.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct StateId(pub u32);

impl StateId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A child-axis transition label.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Transition {
    /// Move to children carrying exactly this label (id in the MFA's own
    /// label interner).
    Label(u32),
    /// Move to any child, whatever its label (the wildcard `*` step).
    Any,
}

/// One state of the selecting NFA.
#[derive(Debug, Clone, Default)]
pub struct NfaState {
    /// ε-transitions: states assumed at the *same* node.
    pub eps: Vec<StateId>,
    /// Label transitions: `(transition, target)` pairs consuming one child step.
    pub trans: Vec<(Transition, StateId)>,
    /// `true` if a node associated with this state belongs to the answer
    /// (provided the state's AFA, if any, holds there).
    pub is_final: bool,
    /// The `λ` annotation: the AFA that must evaluate to `true` at any node
    /// associated with this state.
    pub afa: Option<AfaId>,
}

/// The selecting NFA: a vector of states plus the start state.
#[derive(Debug, Clone)]
pub struct Nfa {
    states: Vec<NfaState>,
    start: StateId,
}

impl Nfa {
    /// Creates an NFA from raw parts. Used by [`crate::MfaBuilder`].
    pub(crate) fn from_parts(states: Vec<NfaState>, start: StateId) -> Self {
        Nfa { states, start }
    }

    /// The start state `s`.
    #[inline]
    pub fn start(&self) -> StateId {
        self.start
    }

    /// Number of states `|Ks|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// `true` if the NFA has no states (never the case once built).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Access to a state.
    #[inline]
    pub fn state(&self, id: StateId) -> &NfaState {
        &self.states[id.index()]
    }

    /// Iterates over `(id, state)` pairs.
    pub fn states(&self) -> impl Iterator<Item = (StateId, &NfaState)> {
        self.states
            .iter()
            .enumerate()
            .map(|(i, s)| (StateId(i as u32), s))
    }

    /// Total number of transitions (ε and labelled), the `|M|` measure used
    /// in the complexity bounds.
    pub fn transition_count(&self) -> usize {
        self.states
            .iter()
            .map(|s| s.eps.len() + s.trans.len())
            .sum()
    }

    /// Computes the ε-closure of `states`: every state reachable via zero or
    /// more ε-transitions. The result is sorted and deduplicated.
    pub fn eps_closure(&self, states: &[StateId]) -> Vec<StateId> {
        let mut seen = vec![false; self.states.len()];
        let mut stack: Vec<StateId> = Vec::with_capacity(states.len());
        for &s in states {
            if !seen[s.index()] {
                seen[s.index()] = true;
                stack.push(s);
            }
        }
        let mut out = Vec::new();
        while let Some(s) = stack.pop() {
            out.push(s);
            for &t in &self.state(s).eps {
                if !seen[t.index()] {
                    seen[t.index()] = true;
                    stack.push(t);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// The paper's `NextNFAStates`: from the ε-closed set `states`, the set
    /// of states reached by consuming a child labelled `label` (before
    /// ε-closure of the result).
    pub fn step(&self, states: &[StateId], label: u32) -> Vec<StateId> {
        let mut out = Vec::new();
        for &s in states {
            for &(t, target) in &self.state(s).trans {
                let matches = match t {
                    Transition::Any => true,
                    Transition::Label(l) => l == label,
                };
                if matches && !out.contains(&target) {
                    out.push(target);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// `true` if any state in `states` is final.
    pub fn any_final(&self, states: &[StateId]) -> bool {
        states.iter().any(|&s| self.state(s).is_final)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mfa::MfaBuilder;

    /// Builds a tiny NFA by hand:  s0 --a--> s1 --ε--> s2(final), s0 --ε--> s3 --b--> s2.
    fn sample() -> Nfa {
        let mut b = MfaBuilder::new();
        let s0 = b.new_state();
        let s1 = b.new_state();
        let s2 = b.new_state();
        let s3 = b.new_state();
        let a = b.intern_label("a");
        let lb = b.intern_label("b");
        b.add_label_transition(s0, Transition::Label(a), s1);
        b.add_eps(s1, s2);
        b.add_eps(s0, s3);
        b.add_label_transition(s3, Transition::Label(lb), s2);
        b.set_final(s2);
        b.set_start(s0);
        b.finish().into_nfa()
    }

    #[test]
    fn eps_closure_follows_chains() {
        let nfa = sample();
        let closure = nfa.eps_closure(&[nfa.start()]);
        assert_eq!(closure, vec![StateId(0), StateId(3)]);
        let closure1 = nfa.eps_closure(&[StateId(1)]);
        assert_eq!(closure1, vec![StateId(1), StateId(2)]);
    }

    #[test]
    fn step_consumes_matching_labels_only() {
        let nfa = sample();
        let closure = nfa.eps_closure(&[nfa.start()]);
        let on_a = nfa.step(&closure, 0);
        assert_eq!(on_a, vec![StateId(1)]);
        let on_b = nfa.step(&closure, 1);
        assert_eq!(on_b, vec![StateId(2)]);
        let on_missing = nfa.step(&closure, 99);
        assert!(on_missing.is_empty());
    }

    #[test]
    fn any_transition_matches_every_label() {
        let mut b = MfaBuilder::new();
        let s0 = b.new_state();
        let s1 = b.new_state();
        b.add_label_transition(s0, Transition::Any, s1);
        b.set_final(s1);
        b.set_start(s0);
        let nfa = b.finish().into_nfa();
        assert_eq!(nfa.step(&[StateId(0)], 7), vec![StateId(1)]);
        assert_eq!(nfa.step(&[StateId(0)], 0), vec![StateId(1)]);
    }

    #[test]
    fn final_detection_and_counts() {
        let nfa = sample();
        assert!(nfa.any_final(&[StateId(2)]));
        assert!(!nfa.any_final(&[StateId(0), StateId(1)]));
        assert_eq!(nfa.len(), 4);
        assert_eq!(nfa.transition_count(), 4);
    }
}
