//! Compilation of `Xreg` queries into equivalent MFAs (Theorem 4.1).
//!
//! The construction follows the inductive structure of the query, in the
//! spirit of Thompson's construction for regular expressions:
//!
//! * the **selecting path** of the query becomes the selecting NFA, with
//!   ε-transitions tying together unions, Kleene-star loops and filters;
//! * every **filter** `[q]` becomes an AFA; the state of the NFA reached by
//!   the filtered sub-path is annotated (`λ`) with that AFA;
//! * **nested filters** inside a filter path are folded into the *same* AFA
//!   via an AND operator state, exactly as described for algorithm `rewrite`
//!   in Section 5 ("for nested filters … a single AFA, rather than nested
//!   AFAs"): the node reached by the inner path must satisfy both the inner
//!   filter and the continuation of the outer path.
//!
//! The resulting MFA has size `O(|Q|)` and is equivalent to `Q` on every
//! tree (verified against the reference evaluator by the tests below and by
//! the cross-crate property tests).

use smoqe_xpath::{Path, Pred};

use crate::afa::{AfaId, AfaState, AfaStateId, FinalPredicate};
use crate::mfa::{AfaBuilder, Mfa, MfaBuilder};
use crate::nfa::{StateId, Transition};

/// Compiles a complete `Xreg` query into an equivalent MFA.
///
/// The query may use the XPath-fragment axes `//` and `*`; they compile to
/// wildcard transitions and wildcard loops directly (no DTD is needed when
/// evaluating over the *document* itself — expansion over a DTD is only
/// required when rewriting over a *view*, see `smoqe-rewrite`).
///
/// ```
/// use smoqe_xpath::parse_path;
/// use smoqe_automata::compile_query;
///
/// let q = parse_path("(patient/parent)*/patient[record/diagnosis/text()='x']").unwrap();
/// let mfa = compile_query(&q);
/// assert!(mfa.size() > 0);
/// assert_eq!(mfa.afas().len(), 1);
/// ```
pub fn compile_query(path: &Path) -> Mfa {
    let mut builder = MfaBuilder::new();
    let final_state = builder.new_state();
    builder.set_final(final_state);
    let start = compile_path_into(&mut builder, path, final_state);
    builder.set_start(start);
    builder.finish()
}

/// Compiles `path` into NFA states inside `builder` such that runs starting
/// at the returned state and ending at `cont` spell exactly the node
/// sequences selected by `path`. Exposed for the view-rewriting algorithm,
/// which splices view-annotation queries into a larger automaton.
pub fn compile_path_into(builder: &mut MfaBuilder, path: &Path, cont: StateId) -> StateId {
    match path {
        Path::Empty => cont,
        Path::Label(name) => {
            let label = builder.intern_label(name);
            let s = builder.new_state();
            builder.add_label_transition(s, Transition::Label(label), cont);
            s
        }
        Path::AnyLabel => {
            let s = builder.new_state();
            builder.add_label_transition(s, Transition::Any, cont);
            s
        }
        Path::DescendantOrSelf => {
            // A single looping state: stay (ε to cont) or descend one level.
            let s = builder.new_state();
            builder.add_eps(s, cont);
            builder.add_label_transition(s, Transition::Any, s);
            s
        }
        Path::Seq(a, b) => {
            let mid = compile_path_into(builder, b, cont);
            compile_path_into(builder, a, mid)
        }
        Path::Union(a, b) => {
            let sa = compile_path_into(builder, a, cont);
            let sb = compile_path_into(builder, b, cont);
            let s = builder.new_state();
            builder.add_eps(s, sa);
            builder.add_eps(s, sb);
            s
        }
        Path::Star(inner) => {
            // Loop head: ε to cont (zero iterations) and ε to the body,
            // whose continuation is the loop head again.
            let head = builder.new_state();
            builder.add_eps(head, cont);
            let body = compile_path_into(builder, inner, head);
            builder.add_eps(head, body);
            head
        }
        Path::Filter(p, q) => {
            let afa = compile_filter(builder, q);
            let checked = builder.new_state();
            builder.set_afa(checked, afa);
            builder.add_eps(checked, cont);
            compile_path_into(builder, p, checked)
        }
    }
}

/// Compiles a filter into a fresh AFA registered with `builder`, returning
/// its id. Exposed for the view-rewriting algorithm.
pub fn compile_filter(builder: &mut MfaBuilder, pred: &Pred) -> AfaId {
    let mut afab = AfaBuilder::new();
    let start = compile_pred_states(builder, &mut afab, pred);
    builder.add_afa(afab.finish(start))
}

/// Compiles a predicate into AFA states, returning the state whose value is
/// the predicate's value at the current node. Exposed (like
/// [`compile_path_afa`]) for the view-rewriting algorithm, which splices
/// view-annotation fragments into rewritten AFAs.
pub fn compile_pred_states(
    builder: &mut MfaBuilder,
    afab: &mut AfaBuilder,
    pred: &Pred,
) -> AfaStateId {
    match pred {
        Pred::Exists(p) => {
            let fin = afab.add(AfaState::Final(FinalPredicate::True));
            compile_path_afa(builder, afab, p, fin)
        }
        Pred::TextEq(p, value) => {
            let fin = afab.add(AfaState::Final(FinalPredicate::TextEq(value.clone())));
            compile_path_afa(builder, afab, p, fin)
        }
        Pred::Not(q) => {
            let inner = compile_pred_states(builder, afab, q);
            afab.add(AfaState::Not(inner))
        }
        Pred::And(a, b) => {
            let sa = compile_pred_states(builder, afab, a);
            let sb = compile_pred_states(builder, afab, b);
            afab.add(AfaState::And(vec![sa, sb]))
        }
        Pred::Or(a, b) => {
            let sa = compile_pred_states(builder, afab, a);
            let sb = compile_pred_states(builder, afab, b);
            afab.add(AfaState::Or(vec![sa, sb]))
        }
    }
}

/// Compiles a path occurring *inside a filter* into AFA states: the returned
/// state is true at a node iff some node reachable via the path makes `cont`
/// true there.
pub fn compile_path_afa(
    builder: &mut MfaBuilder,
    afab: &mut AfaBuilder,
    path: &Path,
    cont: AfaStateId,
) -> AfaStateId {
    match path {
        Path::Empty => cont,
        Path::Label(name) => {
            let label = builder.intern_label(name);
            afab.add(AfaState::Trans(Transition::Label(label), cont))
        }
        Path::AnyLabel => afab.add(AfaState::Trans(Transition::Any, cont)),
        Path::DescendantOrSelf => {
            let head = afab.placeholder();
            let descend = afab.add(AfaState::Trans(Transition::Any, head));
            afab.patch(head, AfaState::Or(vec![cont, descend]));
            head
        }
        Path::Seq(a, b) => {
            let mid = compile_path_afa(builder, afab, b, cont);
            compile_path_afa(builder, afab, a, mid)
        }
        Path::Union(a, b) => {
            let sa = compile_path_afa(builder, afab, a, cont);
            let sb = compile_path_afa(builder, afab, b, cont);
            afab.add(AfaState::Or(vec![sa, sb]))
        }
        Path::Star(inner) => {
            let head = afab.placeholder();
            let body = compile_path_afa(builder, afab, inner, head);
            afab.patch(head, AfaState::Or(vec![cont, body]));
            head
        }
        Path::Filter(p, q) => {
            // The node reached by `p` must satisfy `q` *and* let the rest of
            // the outer path continue: a single AND state folds the nested
            // filter into the same AFA (no nested AFAs, as in the paper).
            let q_state = compile_pred_states(builder, afab, q);
            let and = afab.add(AfaState::And(vec![q_state, cont]));
            compile_path_afa(builder, afab, p, and)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::evaluate_mfa_at;
    use smoqe_xpath::{evaluate, parse_path};
    use smoqe_xml::{XmlTree, XmlTreeBuilder};
    use std::collections::BTreeSet;

    /// The view-shaped tree of Fig. 4 (hospital / patient / parent …).
    fn fig4_tree() -> XmlTree {
        let mut b = XmlTreeBuilder::new();
        let root = b.root("hospital"); // node 1
        let p2 = b.child(root, "patient"); // node 2
        let par3 = b.child(p2, "parent"); // 3
        let p4 = b.child(par3, "patient"); // 4
        let par5 = b.child(p4, "parent"); // 5
        let p6 = b.child(par5, "patient"); // 6 (leaf patient)
        let _ = p6;
        let rec_of_4 = b.child(p4, "record"); // under node 4
        b.child_with_text(rec_of_4, "diagnosis", "lung disease");
        let rec7 = b.child(p2, "record"); // 7
        b.child_with_text(rec7, "diagnosis", "lung disease"); // 8
        let p9 = b.child(root, "patient"); // 9
        let par10 = b.child(p9, "parent"); // 10
        let p11 = b.child(par10, "patient"); // 11
        let rec12 = b.child(p11, "record"); // 12
        b.child_with_text(rec12, "diagnosis", "heart disease"); // 13
        let rec14 = b.child(p9, "record"); // 14
        b.child_with_text(rec14, "diagnosis", "brain disease"); // 15
        b.finish()
    }

    /// Asserts that compiling `query` and evaluating the MFA yields exactly
    /// the reference evaluator's answer on `tree`.
    fn assert_equivalent(tree: &XmlTree, query: &str) {
        let q = parse_path(query).unwrap();
        let expected: BTreeSet<_> = evaluate(tree, tree.root(), &q);
        let mfa = compile_query(&q);
        let got = evaluate_mfa_at(tree, tree.root(), &mfa);
        assert_eq!(got, expected, "MFA disagrees with reference on `{query}`");
    }

    #[test]
    fn simple_chain() {
        assert_equivalent(&fig4_tree(), "patient/parent/patient");
    }

    #[test]
    fn union_and_wildcard() {
        assert_equivalent(&fig4_tree(), "patient/(parent | record)");
        assert_equivalent(&fig4_tree(), "patient/*");
    }

    #[test]
    fn kleene_star_selecting_path() {
        assert_equivalent(&fig4_tree(), "(patient/parent)*/patient");
        assert_equivalent(&fig4_tree(), "patient/(parent/patient)*/record");
    }

    #[test]
    fn descendant_axis() {
        assert_equivalent(&fig4_tree(), "//diagnosis");
        assert_equivalent(&fig4_tree(), "patient//record");
    }

    #[test]
    fn simple_filters() {
        assert_equivalent(&fig4_tree(), "patient[record]");
        assert_equivalent(&fig4_tree(), "patient[record/diagnosis/text()='brain disease']");
        assert_equivalent(&fig4_tree(), "patient[not(parent)]");
    }

    #[test]
    fn example_4_1_query_q0() {
        // Q0 = (patient/parent)*/patient[(parent/patient)*/record/diagnosis[text()='heart disease']]
        assert_equivalent(
            &fig4_tree(),
            "(patient/parent)*/patient[(parent/patient)*/record/diagnosis[text()='heart disease']]",
        );
    }

    #[test]
    fn example_1_1_query() {
        assert_equivalent(
            &fig4_tree(),
            "patient[*//record/diagnosis/text()='heart disease']",
        );
    }

    #[test]
    fn boolean_combinations_in_filters() {
        let t = fig4_tree();
        assert_equivalent(&t, "patient[record and parent]");
        assert_equivalent(&t, "patient[record or parent]");
        assert_equivalent(
            &t,
            "patient[not(record/diagnosis/text()='heart disease') and parent]",
        );
        assert_equivalent(
            &t,
            "(patient/parent)*/patient[record/diagnosis/text()='heart disease' or not(record)]",
        );
    }

    #[test]
    fn nested_filters_fold_into_one_afa() {
        let q = parse_path("patient[parent/patient[record]/record]").unwrap();
        let mfa = compile_query(&q);
        assert_eq!(mfa.afas().len(), 1, "nested filters must share one AFA");
        assert_equivalent(&fig4_tree(), "patient[parent/patient[record]/record]");
    }

    #[test]
    fn filter_inside_kleene_star() {
        assert_equivalent(
            &fig4_tree(),
            "(patient/parent[patient])*/patient[record]",
        );
    }

    #[test]
    fn kleene_star_inside_filter() {
        assert_equivalent(
            &fig4_tree(),
            "patient[(parent/patient)*/record/diagnosis/text()='heart disease']",
        );
    }

    #[test]
    fn degenerate_queries() {
        let t = fig4_tree();
        assert_equivalent(&t, ".");
        assert_equivalent(&t, "(.)*");
        assert_equivalent(&t, "patient[.]");
        assert_equivalent(&t, "nosuchlabel");
    }

    #[test]
    fn mfa_size_is_linear_in_query_size() {
        // Chain queries of increasing length: the MFA must grow linearly.
        let mut prev = 0usize;
        for n in [2usize, 4, 8, 16, 32] {
            let labels: Vec<String> = (0..n).map(|i| format!("l{i}")).collect();
            let text = labels.join("/");
            let q = parse_path(&text).unwrap();
            let mfa = compile_query(&q);
            let size = mfa.size();
            assert!(size >= n, "size {size} too small for chain of {n}");
            assert!(size <= 8 * n + 8, "size {size} not linear for chain of {n}");
            assert!(size > prev);
            prev = size;
        }
    }

    #[test]
    fn filters_produce_afa_annotations() {
        let q = parse_path("a[b]/c[d and e]").unwrap();
        let mfa = compile_query(&q);
        assert_eq!(mfa.afas().len(), 2);
        let annotated = mfa
            .nfa()
            .states()
            .filter(|(_, s)| s.afa.is_some())
            .count();
        assert_eq!(annotated, 2);
    }
}
