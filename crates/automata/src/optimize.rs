//! Post-construction MFA clean-up.
//!
//! The view-rewriting product construction allocates one NFA state per
//! (query state, view type) pair and one AFA per (filter, view type) pair
//! that it *visits*; some of those turn out to be dead weight:
//!
//! * NFA states that are unreachable from the start state (e.g. product
//!   states created for a view type that the query's alphabet can never
//!   reach),
//! * NFA states from which no final state is reachable (they can never
//!   contribute an answer, only cost work during evaluation),
//! * AFAs whose annotation sits on a removed state,
//! * AFA states unreachable from their AFA's start state.
//!
//! [`optimize_mfa`] removes all of the above while preserving the automaton's
//! semantics (checked against the naive evaluator by the tests and by the
//! cross-crate property suite). It is used by the engine as an optional
//! pass and by the `rewrite_complexity` ablation benchmark.

use std::collections::HashMap;

use crate::afa::{Afa, AfaId, AfaState, AfaStateId};
use crate::mfa::{Mfa, MfaBuilder};
use crate::nfa::{StateId, Transition};

/// Statistics of one optimization pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptimizeStats {
    /// NFA states before / after.
    pub nfa_states_before: usize,
    /// NFA states after the pass.
    pub nfa_states_after: usize,
    /// AFAs before the pass.
    pub afas_before: usize,
    /// AFAs after the pass.
    pub afas_after: usize,
    /// Total AFA states before the pass.
    pub afa_states_before: usize,
    /// Total AFA states after the pass.
    pub afa_states_after: usize,
}

/// Removes unreachable and useless (never-accepting) NFA states, unused
/// AFAs and unreachable AFA states. Returns the smaller, equivalent MFA and
/// the statistics of what was removed.
pub fn optimize_mfa(mfa: &Mfa) -> (Mfa, OptimizeStats) {
    let nfa = mfa.nfa();

    // ---- 1. Forward reachability from the start state. ----
    let mut forward = vec![false; nfa.len()];
    let mut stack = vec![nfa.start()];
    forward[nfa.start().index()] = true;
    while let Some(s) = stack.pop() {
        let state = nfa.state(s);
        for &e in &state.eps {
            if !forward[e.index()] {
                forward[e.index()] = true;
                stack.push(e);
            }
        }
        for &(_, t) in &state.trans {
            if !forward[t.index()] {
                forward[t.index()] = true;
                stack.push(t);
            }
        }
    }

    // ---- 2. Backward usefulness: can a final state be reached? ----
    let mut useful = vec![false; nfa.len()];
    for (id, state) in nfa.states() {
        if state.is_final {
            useful[id.index()] = true;
        }
    }
    loop {
        let mut changed = false;
        for (id, state) in nfa.states() {
            if useful[id.index()] {
                continue;
            }
            let reaches = state.eps.iter().any(|e| useful[e.index()])
                || state.trans.iter().any(|&(_, t)| useful[t.index()]);
            if reaches {
                useful[id.index()] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // The start state is always kept so the automaton stays well-formed even
    // when the query is unsatisfiable (it then has a single, non-final state).
    let keep: Vec<bool> = (0..nfa.len())
        .map(|i| (forward[i] && useful[i]) || i == nfa.start().index())
        .collect();

    // ---- 3. Rebuild the NFA over the kept states. ----
    let mut builder = MfaBuilder::with_labels(mfa.labels().clone());
    let mut state_map: HashMap<StateId, StateId> = HashMap::new();
    for (id, _) in nfa.states() {
        if keep[id.index()] {
            state_map.insert(id, builder.new_state());
        }
    }
    // ---- 4. Copy the AFAs that are still referenced, compacted. ----
    let mut afa_map: HashMap<AfaId, AfaId> = HashMap::new();
    for (id, state) in nfa.states() {
        if !keep[id.index()] {
            continue;
        }
        if let Some(old_afa) = state.afa {
            if let std::collections::hash_map::Entry::Vacant(entry) = afa_map.entry(old_afa) {
                let compacted = compact_afa(mfa.afa(old_afa));
                entry.insert(builder.add_afa(compacted));
            }
        }
    }
    for (id, state) in nfa.states() {
        if !keep[id.index()] {
            continue;
        }
        let new_id = state_map[&id];
        if state.is_final {
            builder.set_final(new_id);
        }
        if let Some(afa) = state.afa {
            builder.set_afa(new_id, afa_map[&afa]);
        }
        for &e in &state.eps {
            if keep[e.index()] {
                builder.add_eps(new_id, state_map[&e]);
            }
        }
        for &(t, target) in &state.trans {
            if keep[target.index()] {
                builder.add_label_transition(new_id, t, state_map[&target]);
            }
        }
    }
    builder.set_start(state_map[&nfa.start()]);
    let optimized = builder.finish();

    let stats = OptimizeStats {
        nfa_states_before: nfa.len(),
        nfa_states_after: optimized.nfa().len(),
        afas_before: mfa.afas().len(),
        afas_after: optimized.afas().len(),
        afa_states_before: mfa.afas().iter().map(Afa::len).sum(),
        afa_states_after: optimized.afas().iter().map(Afa::len).sum(),
    };
    (optimized, stats)
}

/// Removes AFA states unreachable from the AFA's start state, remapping ids.
fn compact_afa(afa: &Afa) -> Afa {
    let mut reachable = vec![false; afa.len()];
    let mut stack = vec![afa.start()];
    reachable[afa.start().index()] = true;
    while let Some(s) = stack.pop() {
        let successors: Vec<AfaStateId> = match afa.state(s) {
            AfaState::And(v) | AfaState::Or(v) => v.clone(),
            AfaState::Not(x) => vec![*x],
            AfaState::Trans(_, t) => vec![*t],
            AfaState::Final(_) => Vec::new(),
        };
        for succ in successors {
            if !reachable[succ.index()] {
                reachable[succ.index()] = true;
                stack.push(succ);
            }
        }
    }

    let mut remap: HashMap<AfaStateId, AfaStateId> = HashMap::new();
    let mut states: Vec<AfaState> = Vec::new();
    for (id, _) in afa.states() {
        if reachable[id.index()] {
            remap.insert(id, AfaStateId(states.len() as u32));
            states.push(AfaState::Final(crate::afa::FinalPredicate::False)); // placeholder
        }
    }
    for (id, state) in afa.states() {
        if !reachable[id.index()] {
            continue;
        }
        let new_state = match state {
            AfaState::And(v) => AfaState::And(v.iter().map(|s| remap[s]).collect()),
            AfaState::Or(v) => AfaState::Or(v.iter().map(|s| remap[s]).collect()),
            AfaState::Not(x) => AfaState::Not(remap[x]),
            AfaState::Trans(t, target) => AfaState::Trans(*t, remap[target]),
            AfaState::Final(p) => AfaState::Final(p.clone()),
        };
        states[remap[&id].index()] = new_state;
    }
    let start = remap[&afa.start()];
    Afa::from_parts(states, start)
}

/// Convenience: the total number of wildcard transitions of an MFA's NFA —
/// reported by the ablation benchmark because wildcard-heavy automata defeat
/// the DTD-based pruning of OptHyPE.
pub fn wildcard_transition_count(mfa: &Mfa) -> usize {
    mfa.nfa()
        .states()
        .map(|(_, s)| {
            s.trans
                .iter()
                .filter(|(t, _)| matches!(t, Transition::Any))
                .count()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile_query;
    use crate::naive::evaluate_mfa;
    use smoqe_xml::XmlTreeBuilder;
    use smoqe_xpath::parse_path;

    fn sample_tree() -> smoqe_xml::XmlTree {
        let mut b = XmlTreeBuilder::new();
        let root = b.root("hospital");
        let p = b.child(root, "patient");
        let par = b.child(p, "parent");
        let p2 = b.child(par, "patient");
        let r = b.child(p2, "record");
        b.child_with_text(r, "diagnosis", "heart disease");
        b.child(p, "record");
        b.finish()
    }

    fn assert_optimization_preserves(query: &str) {
        let tree = sample_tree();
        let q = parse_path(query).unwrap();
        let mfa = compile_query(&q);
        let (optimized, stats) = optimize_mfa(&mfa);
        assert_eq!(
            evaluate_mfa(&tree, &mfa),
            evaluate_mfa(&tree, &optimized),
            "optimization changed the answer of `{query}`"
        );
        assert!(stats.nfa_states_after <= stats.nfa_states_before);
        assert!(stats.afa_states_after <= stats.afa_states_before);
    }

    #[test]
    fn preserves_semantics_on_a_corpus() {
        for query in [
            "patient",
            "patient/parent/patient/record/diagnosis",
            "(patient/parent)*/patient[record]",
            "patient[*//record/diagnosis/text()='heart disease']",
            "patient[not(record)] | patient/record",
            "doesnotexist/anywhere",
        ] {
            assert_optimization_preserves(query);
        }
    }

    #[test]
    fn removes_states_that_cannot_reach_a_final_state() {
        // A union where one branch mentions a label that leads nowhere
        // useful is still compiled (the compiler is syntax-directed), but
        // after a rewrite-style dead branch is introduced the optimizer
        // shrinks the automaton. Simplest observable case: a filter compiled
        // into an MFA keeps its AFA; the path `a/b` produces 3 states, all
        // useful, so nothing shrinks — whereas building an MFA by hand with
        // an extra orphan state does shrink.
        let mut builder = MfaBuilder::new();
        let a = builder.intern_label("a");
        let s0 = builder.new_state();
        let s1 = builder.new_state();
        let dead = builder.new_state(); // unreachable
        let _ = dead;
        builder.add_label_transition(s0, Transition::Label(a), s1);
        builder.set_final(s1);
        builder.set_start(s0);
        let mfa = builder.finish();
        let (optimized, stats) = optimize_mfa(&mfa);
        assert_eq!(stats.nfa_states_before, 3);
        assert_eq!(stats.nfa_states_after, 2);
        assert_eq!(optimized.nfa().len(), 2);
    }

    #[test]
    fn unsatisfiable_queries_keep_a_well_formed_automaton() {
        let q = parse_path("nosuch[neverhere]").unwrap();
        let mfa = compile_query(&q);
        let (optimized, _) = optimize_mfa(&mfa);
        let tree = sample_tree();
        assert!(evaluate_mfa(&tree, &optimized).is_empty());
        assert!(!optimized.nfa().is_empty());
    }

    #[test]
    fn compacting_afas_drops_unreachable_states() {
        use crate::afa::FinalPredicate;
        // Hand-build an AFA with an orphan state.
        let states = vec![
            AfaState::Trans(Transition::Any, AfaStateId(1)),
            AfaState::Final(FinalPredicate::True),
            AfaState::Final(FinalPredicate::False), // orphan
        ];
        let afa = Afa::from_parts(states, AfaStateId(0));
        let compacted = compact_afa(&afa);
        assert_eq!(compacted.len(), 2);
    }

    #[test]
    fn wildcard_count_reflects_descendant_axes() {
        let no_wildcards = compile_query(&parse_path("a/b/c").unwrap());
        assert_eq!(wildcard_transition_count(&no_wildcards), 0);
        let with_descendant = compile_query(&parse_path("a//b").unwrap());
        assert!(wildcard_transition_count(&with_descendant) >= 1);
    }
}
