//! Translation between a document's label ids and an MFA's label ids.
//!
//! A document tree and an MFA each intern labels independently (the MFA is
//! usually compiled before any document is loaded). At evaluation time a
//! [`LabelMap`] translates the document's dense label ids into the MFA's
//! ids once, so the inner evaluation loops compare plain integers.

use smoqe_xml::{LabelId, LabelInterner};

use crate::mfa::Mfa;
use crate::nfa::Transition;

/// Maps a document interner's label ids onto an MFA's label ids.
#[derive(Debug, Clone)]
pub struct LabelMap {
    /// Indexed by document label id; `None` when the MFA never mentions the
    /// label (such children can only be matched by wildcard transitions).
    doc_to_mfa: Vec<Option<u32>>,
}

impl LabelMap {
    /// Builds the map for evaluating `mfa` over documents using `doc_labels`.
    pub fn new(mfa: &Mfa, doc_labels: &LabelInterner) -> Self {
        Self::from_interners(mfa.labels(), doc_labels)
    }

    /// Builds a map between two arbitrary interners (MFA-side first).
    pub fn from_interners(mfa_labels: &LabelInterner, doc_labels: &LabelInterner) -> Self {
        let mut doc_to_mfa = vec![None; doc_labels.len()];
        for (doc_id, name) in doc_labels.iter() {
            if let Some(mfa_id) = mfa_labels.get(name) {
                doc_to_mfa[doc_id.index()] = Some(mfa_id.0);
            }
        }
        LabelMap { doc_to_mfa }
    }

    /// Number of document labels the map currently covers.
    pub fn len(&self) -> usize {
        self.doc_to_mfa.len()
    }

    /// `true` if the map covers no document labels yet.
    pub fn is_empty(&self) -> bool {
        self.doc_to_mfa.is_empty()
    }

    /// Extends the map with document labels interned *after* the map was
    /// built. The streaming evaluator interns labels as `Open` events
    /// arrive, so its maps grow with the document instead of being complete
    /// up front; ids already covered are left untouched.
    pub fn extend(&mut self, mfa: &Mfa, doc_labels: &LabelInterner) {
        for (doc_id, name) in doc_labels.iter().skip(self.doc_to_mfa.len()) {
            debug_assert_eq!(doc_id.index(), self.doc_to_mfa.len());
            self.doc_to_mfa.push(mfa.labels().get(name).map(|id| id.0));
        }
    }

    /// Translates a document label id into the MFA's id, if the MFA knows it.
    #[inline]
    pub fn translate(&self, doc_label: LabelId) -> Option<u32> {
        self.doc_to_mfa.get(doc_label.index()).copied().flatten()
    }

    /// Returns `true` if `transition` matches a document node labelled
    /// `doc_label`.
    #[inline]
    pub fn matches(&self, transition: Transition, doc_label: LabelId) -> bool {
        match transition {
            Transition::Any => true,
            Transition::Label(l) => self.translate(doc_label) == Some(l),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mfa::MfaBuilder;

    #[test]
    fn translate_and_match() {
        let mut b = MfaBuilder::new();
        let patient = b.intern_label("patient");
        let s = b.new_state();
        b.set_start(s);
        let mfa = b.finish();

        let mut doc_labels = LabelInterner::new();
        let doc_doctor = doc_labels.intern("doctor");
        let doc_patient = doc_labels.intern("patient");

        let map = LabelMap::new(&mfa, &doc_labels);
        assert_eq!(map.translate(doc_patient), Some(patient));
        assert_eq!(map.translate(doc_doctor), None);
        assert!(map.matches(Transition::Label(patient), doc_patient));
        assert!(!map.matches(Transition::Label(patient), doc_doctor));
        assert!(map.matches(Transition::Any, doc_doctor));
    }

    #[test]
    fn extend_covers_labels_interned_after_construction() {
        let mut b = MfaBuilder::new();
        let patient = b.intern_label("patient");
        let s = b.new_state();
        b.set_start(s);
        let mfa = b.finish();

        let mut doc_labels = LabelInterner::new();
        let hospital = doc_labels.intern("hospital");
        let mut map = LabelMap::new(&mfa, &doc_labels);
        assert_eq!(map.len(), 1);
        assert_eq!(map.translate(hospital), None);

        // A streamed document reveals new labels mid-parse.
        let doc_patient = doc_labels.intern("patient");
        let doc_ward = doc_labels.intern("ward");
        map.extend(&mfa, &doc_labels);
        assert_eq!(map.len(), 3);
        assert_eq!(map.translate(doc_patient), Some(patient));
        assert_eq!(map.translate(doc_ward), None);
        assert!(!map.is_empty());
        // Extending again with no new labels is a no-op.
        map.extend(&mfa, &doc_labels);
        assert_eq!(map.len(), 3);
    }

    #[test]
    fn unknown_document_label_is_handled() {
        let mut b = MfaBuilder::new();
        let s = b.new_state();
        b.set_start(s);
        let mfa = b.finish();
        let doc_labels = LabelInterner::new();
        let map = LabelMap::new(&mfa, &doc_labels);
        // Out-of-range ids (possible when the map was built from an older
        // snapshot of the interner) must not panic.
        assert_eq!(map.translate(LabelId(42)), None);
    }
}
