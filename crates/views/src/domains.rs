//! Security specifications and view definitions for the fuzz domains
//! (`smoqe_xml::domains`): bom, logs and social.
//!
//! The bom and logs views are **derived** from [`SecuritySpec`]s via
//! [`derive_view`] — exercising elide-and-promote (including
//! [`Access::Conditional`] filters) on DTDs other than the paper's hospital
//! example. The social view is **hand-written**, and is the domain whose
//! *view definition* is heavily recursive: its annotations traverse the
//! document's `friend → member` relation directly (`σ(member, member)`) and
//! with a Kleene closure (`σ(member, post)`), so rewriting must cope with
//! stars that arise from the view rather than from the query.

use smoqe_xml::domains::{
    bom_document_dtd, logs_document_dtd, social_document_dtd, social_view_dtd, DOMESTIC,
    ERROR_LEVEL,
};
use smoqe_xpath::{Path, Pred};

use crate::definition::ViewDefinition;
use crate::security::{derive_view, Access, SecuritySpec};

/// The security policy of the **bom** domain: suppliers and costs are trade
/// secrets, assemblies are elided, and only domestically sourced parts are
/// visible.
///
/// * `catalog → supplier` — denied (the whole supplier subtree vanishes);
/// * `product → assembly`, `part → assembly` — denied: assemblies are
///   elided, their parts are promoted to the enclosing product/part;
/// * `assembly → part` — conditional on `origin/text() = 'domestic'`;
/// * `part → cost` — denied everywhere.
pub fn bom_security_spec() -> SecuritySpec {
    let mut spec = SecuritySpec::new(bom_document_dtd());
    spec.annotate("catalog", "supplier", Access::Deny);
    spec.annotate("product", "assembly", Access::Deny);
    spec.annotate("part", "assembly", Access::Deny);
    spec.annotate(
        "assembly",
        "part",
        Access::Conditional(Pred::text_eq(Path::label("origin"), DOMESTIC)),
    );
    spec.deny_everywhere("cost");
    // The supplier subtree is gone with its parent, but its leaves must not
    // be promoted through the hidden region either.
    spec.deny_everywhere("sname");
    spec.deny_everywhere("region");
    spec
}

/// The derived **bom** view:
///
/// ```text
/// σ(catalog, product) = product
/// σ(product, pid)     = pid
/// σ(product, part)    = assembly/part[origin/text() = 'domestic']
/// σ(part, pnum)       = pnum
/// σ(part, origin)     = origin
/// σ(part, part)       = assembly/part[origin/text() = 'domestic']
/// ```
///
/// The view DTD is recursive (`part → part`), mirroring the document
/// recursion with the hidden `assembly` hop elided.
pub fn bom_view() -> ViewDefinition {
    let view = derive_view(&bom_security_spec()).expect("bom view derives");
    view.check().expect("bom view is complete");
    view
}

/// The security policy of the **logs** domain: shards (and their hosts) are
/// infrastructure detail, timestamps are hidden, and only `error`-level
/// entries are exposed.
///
/// * `logbook → shard` — denied: entries are promoted to the logbook root;
/// * `shard → entry` — conditional on `level/text() = 'error'`;
/// * `host`, `ts` — denied everywhere.
pub fn logs_security_spec() -> SecuritySpec {
    let mut spec = SecuritySpec::new(logs_document_dtd());
    spec.annotate("logbook", "shard", Access::Deny);
    spec.annotate(
        "shard",
        "entry",
        Access::Conditional(Pred::text_eq(Path::label("level"), ERROR_LEVEL)),
    );
    spec.deny_everywhere("host");
    spec.deny_everywhere("ts");
    spec
}

/// The derived **logs** view:
///
/// ```text
/// σ(logbook, entry) = shard/entry[level/text() = 'error']
/// σ(entry, level)   = level      σ(entry, svc) = svc     σ(entry, msg) = msg
/// σ(entry, ctx)     = ctx        σ(ctx, k00…)  = k00…
/// ```
///
/// Flat but wide: the view keeps the whole exploded context-key vocabulary
/// (including the alias labels), so view queries can probe `//patient` and
/// friends through the view.
pub fn logs_view() -> ViewDefinition {
    let view = derive_view(&logs_security_spec()).expect("logs view derives");
    view.check().expect("logs view is complete");
    view
}

/// The hand-written, heavily recursive **social** view:
///
/// ```text
/// σ(network, member) = member[not(banned)]
/// σ(member, handle)  = handle
/// σ(member, member)  = friend/member[not(banned)]
/// σ(member, post)    = (friend/member)*/post[not(tag/text() = 'private')]
/// σ(post, content)   = content
/// ```
///
/// Two annotations recurse through the document's friend relation: the view
/// `member → member` edge walks it one hop at a time, while `member → post`
/// closes over it with a Kleene star, exposing the posts of *all*
/// transitively reachable friends (public ones, for non-banned members).
pub fn social_view() -> ViewDefinition {
    let mut view = ViewDefinition::new(social_document_dtd(), social_view_dtd());
    view.annotate_str("network", "member", "member[not(banned)]")
        .expect("σ(network, member)");
    view.annotate_str("member", "handle", "handle").expect("σ(member, handle)");
    view.annotate_str("member", "member", "friend/member[not(banned)]")
        .expect("σ(member, member)");
    view.annotate_str(
        "member",
        "post",
        "(friend/member)*/post[not(tag/text()='private')]",
    )
    .expect("σ(member, post)");
    view.annotate_str("post", "content", "content").expect("σ(post, content)");
    view.check().expect("social view is complete");
    view
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::materialize::materialize;
    use smoqe_xml::XmlTreeBuilder;
    use smoqe_xpath::{evaluate, parse_path};

    #[test]
    fn bom_view_derives_complete_and_recursive() {
        let view = bom_view();
        assert!(view.is_recursive(), "bom view keeps the part recursion");
        assert!(view.is_edge("catalog", "product"));
        assert!(view.is_edge("part", "part"));
        assert!(!view.is_edge("catalog", "supplier"), "suppliers are hidden");
        let promoted = view.annotation("product", "part").expect("promoted edge");
        let rendered = format!("{promoted}");
        assert!(
            rendered.contains("assembly") && rendered.contains(DOMESTIC),
            "σ(product, part) crosses the elided assembly with the condition: {rendered}"
        );
    }

    #[test]
    fn logs_view_promotes_error_entries_to_the_root() {
        let view = logs_view();
        assert!(!view.is_recursive(), "logs stays flat");
        assert!(view.is_edge("logbook", "entry"), "entries promote past shards");
        assert!(!view.is_edge("entry", "ts"), "timestamps are hidden");
        let q = view.annotation("logbook", "entry").expect("promoted edge");
        assert!(format!("{q}").contains(ERROR_LEVEL));
    }

    #[test]
    fn social_view_materializes_transitive_friend_posts() {
        // alice —friend→ bob —friend→ carol(posts "deep"); bob is banned.
        let mut b = XmlTreeBuilder::new();
        let root = b.root("network");
        let alice = b.child(root, "member");
        b.child_with_text(alice, "mid", "1");
        b.child_with_text(alice, "handle", "alice");
        let f = b.child(alice, "friend");
        let bob = b.child(f, "member");
        b.child_with_text(bob, "mid", "2");
        b.child_with_text(bob, "handle", "bob");
        b.child(bob, "banned");
        let f2 = b.child(bob, "friend");
        let carol = b.child(f2, "member");
        b.child_with_text(carol, "mid", "3");
        b.child_with_text(carol, "handle", "carol");
        let post = b.child(carol, "post");
        b.child_with_text(post, "content", "deep");
        let doc = b.finish();
        social_document_dtd().validate(&doc).unwrap();

        let view = social_view();
        let mv = materialize(&view, &doc).unwrap();
        // Alice is visible; bob is banned so the member recursion stops at
        // him — but the starred post annotation still reaches carol's post.
        let members = evaluate(
            &mv.tree,
            mv.tree.root(),
            &parse_path("member").unwrap(),
        );
        assert_eq!(members.len(), 1, "only alice at the top level");
        let posts = evaluate(&mv.tree, mv.tree.root(), &parse_path("//post/content").unwrap());
        assert_eq!(posts.len(), 1, "carol's post is reachable through the closure");
        let origins = mv.origins_of(&posts);
        let texts: Vec<_> = origins.iter().map(|&n| doc.text(n).unwrap_or("")).collect();
        assert_eq!(texts, ["deep"]);
    }
}
