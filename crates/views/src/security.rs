//! Security annotations and automatic derivation of security views.
//!
//! The paper's motivating application (Section 1) is XML access control in
//! the style of its reference \[9\] (Fan, Chan, Garofalakis, *Secure XML
//! querying with security views*): the data owner annotates the **document
//! DTD** with access rules, and a **security view** — a view DTD plus an
//! annotation mapping σ, i.e. exactly a [`ViewDefinition`] — is derived
//! automatically. Users only ever see and query the derived view.
//!
//! A [`SecuritySpec`] annotates each edge `(A, B)` of the document DTD with
//!
//! * [`Access::Allow`] — `B` children are visible below `A`,
//! * [`Access::Deny`] — `B` children (and everything below them that is not
//!   reachable otherwise) are hidden,
//! * [`Access::Conditional`] — `B` children are visible only when a filter
//!   holds at them (e.g. only heart-disease patients).
//!
//! [`derive_view`] turns a specification into a [`ViewDefinition`]:
//! hidden elements are *elided* — their accessible descendants are promoted
//! to the nearest visible ancestor, with the connecting path (which may
//! traverse a *recursive* hidden region, producing a Kleene closure) becoming
//! the annotation query. This is precisely how recursive view definitions
//! like the ones this paper studies arise in practice.

use std::collections::{BTreeMap, BTreeSet};

use smoqe_xml::{Child, ContentModel, Dtd};
use smoqe_xpath::{Path, Pred};

use crate::definition::{ViewDefinition, ViewError};

/// Per-edge access annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Access {
    /// The child element is visible.
    Allow,
    /// The child element (and its subtree, unless promoted through another
    /// rule) is hidden.
    Deny,
    /// The child element is visible only where the filter holds.
    Conditional(Pred),
}

/// A security specification: the document DTD plus one [`Access`] annotation
/// per edge of its DTD graph. Unannotated edges default to [`Access::Allow`]
/// (the usual "open by default" policy; call [`SecuritySpec::deny_by_default`]
/// for the opposite).
#[derive(Debug, Clone)]
pub struct SecuritySpec {
    dtd: Dtd,
    rules: BTreeMap<(String, String), Access>,
    default: Access,
}

impl SecuritySpec {
    /// Creates a specification over `dtd` with an `Allow` default.
    pub fn new(dtd: Dtd) -> Self {
        SecuritySpec {
            dtd,
            rules: BTreeMap::new(),
            default: Access::Allow,
        }
    }

    /// Switches the default for unannotated edges to `Deny`.
    pub fn deny_by_default(mut self) -> Self {
        self.default = Access::Deny;
        self
    }

    /// The document DTD the specification refers to.
    pub fn document_dtd(&self) -> &Dtd {
        &self.dtd
    }

    /// Annotates the edge `(parent, child)`.
    pub fn annotate(&mut self, parent: &str, child: &str, access: Access) -> &mut Self {
        self.rules
            .insert((parent.to_owned(), child.to_owned()), access);
        self
    }

    /// Convenience: denies every edge *into* `child`, whatever the parent.
    pub fn deny_everywhere(&mut self, child: &str) -> &mut Self {
        let parents: Vec<String> = self
            .dtd
            .element_types()
            .iter()
            .filter(|t| {
                self.dtd
                    .production(t)
                    .map(|m| m.child_types().contains(&child))
                    .unwrap_or(false)
            })
            .map(|t| t.to_string())
            .collect();
        for parent in parents {
            self.annotate(&parent, child, Access::Deny);
        }
        self
    }

    /// The effective access of an edge.
    pub fn access(&self, parent: &str, child: &str) -> Access {
        self.rules
            .get(&(parent.to_owned(), child.to_owned()))
            .cloned()
            .unwrap_or_else(|| self.default.clone())
    }

    /// Checks that every annotated edge actually exists in the DTD.
    pub fn check(&self) -> Result<(), ViewError> {
        self.dtd
            .check_well_formed()
            .map_err(|e| ViewError::BadDtd(e.to_string()))?;
        for (parent, child) in self.rules.keys() {
            let exists = self
                .dtd
                .production(parent)
                .map(|m| m.child_types().contains(&child.as_str()))
                .unwrap_or(false);
            if !exists {
                return Err(ViewError::UnknownEdge {
                    parent: parent.clone(),
                    child: child.clone(),
                });
            }
        }
        Ok(())
    }
}

/// Derives the security view (view DTD + annotation mapping σ) from a
/// specification, following the elide-and-promote semantics described in the
/// module documentation.
///
/// In the derived view every element type keeps its document name, every
/// visible child relation is starred (promotion through hidden regions does
/// not preserve exact multiplicities), text element types stay text, and
/// the annotation `σ(A, B)` is the query navigating — in the document —
/// from an `A` element to the promoted `B` elements, including any filters
/// from [`Access::Conditional`] rules and any Kleene closure needed to cross
/// a recursive hidden region.
pub fn derive_view(spec: &SecuritySpec) -> Result<ViewDefinition, ViewError> {
    spec.check()?;
    let dtd = &spec.dtd;
    let root = dtd.root().to_owned();

    // For every type, precompute its (single-step) children and the access
    // rule of the connecting edge.
    let types: Vec<String> = dtd.element_types().iter().map(|s| s.to_string()).collect();

    // The set of *visible* types and the annotation σ(A, B) for every pair of
    // visible types, discovered by a BFS from the root over visible types.
    let mut visible: BTreeSet<String> = BTreeSet::new();
    visible.insert(root.clone());
    let mut annotations: BTreeMap<(String, String), Path> = BTreeMap::new();
    let mut worklist: Vec<String> = vec![root.clone()];
    let mut processed: BTreeSet<String> = BTreeSet::new();

    while let Some(a) = worklist.pop() {
        if !processed.insert(a.clone()) {
            continue;
        }
        // For the visible type `a`, find every visible type reachable by one
        // visible edge whose intermediate elements are all hidden, and build
        // the corresponding document path.
        for (b, path) in promoted_children(spec, &types, &a) {
            let entry = annotations.entry((a.clone(), b.clone()));
            match entry {
                std::collections::btree_map::Entry::Vacant(v) => {
                    v.insert(path);
                }
                std::collections::btree_map::Entry::Occupied(mut o) => {
                    let existing = o.get().clone();
                    o.insert(existing.or(path));
                }
            }
            if visible.insert(b.clone()) || !processed.contains(&b) {
                worklist.push(b);
            }
        }
    }

    // Build the view DTD over the visible types.
    let mut view_dtd = Dtd::new(&root);
    for ty in &visible {
        let model = match dtd.production(ty) {
            Some(ContentModel::Text) => ContentModel::Text,
            Some(ContentModel::Empty) => ContentModel::Empty,
            _ => {
                let children: Vec<Child> = visible
                    .iter()
                    .filter(|b| annotations.contains_key(&(ty.clone(), (*b).clone())))
                    .map(|b| Child::star(b))
                    .collect();
                if children.is_empty() {
                    ContentModel::Empty
                } else {
                    ContentModel::Sequence(children)
                }
            }
        };
        view_dtd.define(ty, model);
    }

    let mut view = ViewDefinition::new(dtd.clone(), view_dtd);
    for ((a, b), path) in annotations {
        if visible.contains(&a) && visible.contains(&b) {
            view.annotate(&a, &b, path)?;
        }
    }
    view.check()?;
    Ok(view)
}

/// For a visible type `a`, the visible types `b` that become its children in
/// the view, together with the document path from an `a` element to those
/// `b` elements. The path crosses only *hidden* intermediate elements; a
/// recursive hidden region contributes a Kleene closure.
fn promoted_children(spec: &SecuritySpec, types: &[String], a: &str) -> Vec<(String, Path)> {
    // Hidden types reachable from `a` through denied edges form the "hidden
    // region"; paths inside it are closed with McNaughton–Yamada.
    let hidden_region: Vec<String> = types
        .iter()
        .filter(|t| t.as_str() != a)
        .cloned()
        .collect();
    let n = hidden_region.len();

    // reach[i]: the path (over the document) from `a` to hidden type i using
    // only denied edges, or None.
    let mut reach: Vec<Option<Path>> = vec![None; n];
    // Matrix of one-step denied edges between hidden types.
    let mut step: Vec<Vec<Option<Path>>> = vec![vec![None; n]; n];

    for (i, h) in hidden_region.iter().enumerate() {
        if let Access::Deny = spec.access(a, h) {
            if edge_exists(spec, a, h) {
                reach[i] = Some(Path::label(h));
            }
        }
        for (j, h2) in hidden_region.iter().enumerate() {
            if edge_exists(spec, h, h2) {
                if let Access::Deny = spec.access(h, h2) {
                    step[i][j] = Some(Path::label(h2));
                }
            }
        }
    }

    // Transitive closure of the denied region (McNaughton–Yamada).
    for k in 0..n {
        let through_star = step[k][k].clone().map(|p| p.star());
        let col_k: Vec<Option<Path>> = step.iter().map(|row| row[k].clone()).collect();
        let row_k: Vec<Option<Path>> = step[k].clone();
        for i in 0..n {
            for j in 0..n {
                if let (Some(ik), Some(kj)) = (&col_k[i], &row_k[j]) {
                    let mut through = ik.clone();
                    if let Some(star) = &through_star {
                        through = through.then(star.clone());
                    }
                    through = through.then(kj.clone());
                    step[i][j] = Some(match step[i][j].take() {
                        None => through,
                        Some(existing) => existing.or(through),
                    });
                }
            }
        }
        // Extend `reach` through k as well.
        if let Some(rk) = reach[k].clone() {
            let via = match &through_star {
                Some(star) => rk.then(star.clone()),
                None => rk,
            };
            for j in 0..n {
                if let Some(kj) = &row_k[j] {
                    let through = via.clone().then(kj.clone());
                    reach[j] = Some(match reach[j].take() {
                        None => through,
                        Some(existing) => existing.or(through),
                    });
                }
            }
        }
    }

    // Now collect visible children: either directly below `a`, or below some
    // hidden element reachable from `a`.
    let mut out: BTreeMap<String, Path> = BTreeMap::new();
    let mut add = |target: String, path: Path| match out.remove(&target) {
        None => {
            out.insert(target, path);
        }
        Some(existing) => {
            out.insert(target, existing.or(path));
        }
    };

    for b in types {
        // Direct edge a -> b.
        if edge_exists(spec, a, b) {
            match spec.access(a, b) {
                Access::Allow => add(b.clone(), Path::label(b)),
                Access::Conditional(q) => {
                    add(b.clone(), Path::label(b).filter(q.clone()));
                }
                Access::Deny => {}
            }
        }
        // Promoted: a ->(denied path to hidden h)-> b with (h, b) visible.
        for (i, h) in hidden_region.iter().enumerate() {
            let Some(prefix) = &reach[i] else { continue };
            if !edge_exists(spec, h, b) {
                continue;
            }
            match spec.access(h, b) {
                Access::Allow => add(b.clone(), prefix.clone().then(Path::label(b))),
                Access::Conditional(q) => add(
                    b.clone(),
                    prefix.clone().then(Path::label(b).filter(q.clone())),
                ),
                Access::Deny => {}
            }
        }
    }
    out.into_iter().collect()
}

fn edge_exists(spec: &SecuritySpec, parent: &str, child: &str) -> bool {
    spec.dtd
        .production(parent)
        .map(|m| m.child_types().contains(&child))
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::materialize::materialize;
    use smoqe_xml::hospital::{hospital_document_dtd, HEART_DISEASE};
    use smoqe_xml::XmlTreeBuilder;
    use smoqe_xpath::{evaluate, parse_path};

    /// The research-institute policy of the paper, expressed as annotations
    /// on the *document* DTD: hide names, addresses, doctors, tests and
    /// siblings; expose only heart-disease patients at the top level.
    fn research_spec() -> SecuritySpec {
        let mut spec = SecuritySpec::new(hospital_document_dtd());
        let condition = Pred::text_eq(
            Path::chain(&["visit", "treatment", "medication", "diagnosis"]),
            HEART_DISEASE,
        );
        spec.annotate("hospital", "department", Access::Deny);
        spec.annotate("department", "patient", Access::Conditional(condition));
        spec.deny_everywhere("pname");
        spec.deny_everywhere("address");
        spec.deny_everywhere("doctor");
        spec.deny_everywhere("sibling");
        spec.deny_everywhere("test");
        // Denying an element does not deny its children (they would be
        // promoted to the nearest visible ancestor), so the policy also
        // denies the leaf types living under the hidden elements.
        for leaf in ["street", "city", "zip", "dname", "specialty", "type"] {
            spec.deny_everywhere(leaf);
        }
        // Visits are elided: their treatments/medications are promoted.
        spec.annotate("patient", "visit", Access::Deny);
        spec.annotate("visit", "treatment", Access::Deny);
        spec.annotate("treatment", "medication", Access::Deny);
        spec.annotate("medication", "type", Access::Deny);
        spec.annotate("visit", "date", Access::Deny);
        spec.annotate("department", "name", Access::Deny);
        spec
    }

    fn sample_document() -> smoqe_xml::XmlTree {
        let mut b = XmlTreeBuilder::new();
        let root = b.root("hospital");
        let dept = b.child(root, "department");
        b.child_with_text(dept, "name", "Cardiology");
        for (name, diag) in [("Alice", HEART_DISEASE), ("Carol", "flu")] {
            let p = b.child(dept, "patient");
            b.child_with_text(p, "pname", name);
            let addr = b.child(p, "address");
            b.child_with_text(addr, "street", "s");
            b.child_with_text(addr, "city", "c");
            b.child_with_text(addr, "zip", "z");
            let v = b.child(p, "visit");
            b.child_with_text(v, "date", "2006-01-01");
            let t = b.child(v, "treatment");
            let m = b.child(t, "medication");
            b.child_with_text(m, "type", "tablet");
            b.child_with_text(m, "diagnosis", diag);
            // Alice has a parent with heart disease, hidden behind a sibling too.
            if name == "Alice" {
                let par = b.child(p, "parent");
                let gp = b.child(par, "patient");
                b.child_with_text(gp, "pname", "Greta");
                let addr = b.child(gp, "address");
                b.child_with_text(addr, "street", "s");
                b.child_with_text(addr, "city", "c");
                b.child_with_text(addr, "zip", "z");
                let v = b.child(gp, "visit");
                b.child_with_text(v, "date", "1980-01-01");
                let t = b.child(v, "treatment");
                let m = b.child(t, "medication");
                b.child_with_text(m, "type", "tablet");
                b.child_with_text(m, "diagnosis", HEART_DISEASE);
            }
        }
        b.finish()
    }

    #[test]
    fn spec_validation_rejects_unknown_edges() {
        let mut spec = SecuritySpec::new(hospital_document_dtd());
        spec.annotate("hospital", "doctor", Access::Deny);
        assert!(matches!(spec.check(), Err(ViewError::UnknownEdge { .. })));
    }

    #[test]
    fn derived_view_hides_denied_types_and_promotes_through_them() {
        let view = derive_view(&research_spec()).unwrap();
        let types: Vec<&str> = view.view_dtd().element_types();
        // Hidden types are gone from the view DTD entirely.
        for hidden in ["pname", "address", "doctor", "sibling", "test", "department", "visit"] {
            assert!(!types.contains(&hidden), "{hidden} should be hidden");
        }
        // Promoted types are present.
        for visible in ["hospital", "patient", "parent", "diagnosis"] {
            assert!(types.contains(&visible), "{visible} should be visible");
        }
        // The promotion across the denied department produced the filter on
        // heart-disease patients, so σ(hospital, patient) goes through
        // department and carries the condition.
        let q1 = view.annotation("hospital", "patient").unwrap().to_string();
        assert!(q1.contains("department"));
        assert!(q1.contains("heart disease"));
        // The promotion across visit/treatment/medication landed on diagnosis.
        let q_diag = view.annotation("patient", "diagnosis").unwrap().to_string();
        assert!(q_diag.contains("visit"));
        assert!(q_diag.contains("medication"));
    }

    #[test]
    fn derived_view_is_recursive_like_the_paper_example() {
        let view = derive_view(&research_spec()).unwrap();
        assert!(view.is_recursive(), "patient/parent recursion must survive");
    }

    #[test]
    fn materializing_the_derived_view_exposes_only_permitted_data() {
        let spec = research_spec();
        let view = derive_view(&spec).unwrap();
        let doc = sample_document();
        let m = materialize(&view, &doc).unwrap();
        view.view_dtd().validate(&m.tree).unwrap();
        // Only the heart-disease patient is exposed.
        let patients = evaluate(&m.tree, m.tree.root(), &parse_path("patient").unwrap());
        assert_eq!(patients.len(), 1);
        // No hidden label appears anywhere in the materialized view.
        for hidden in ["pname", "address", "doctor", "street", "test", "date"] {
            assert!(
                m.tree.labels().get(hidden).is_none(),
                "{hidden} leaked into the materialized view"
            );
        }
        // The promoted diagnosis text is visible.
        let diags = evaluate(&m.tree, m.tree.root(), &parse_path("//diagnosis").unwrap());
        assert!(!diags.is_empty());
    }

    #[test]
    fn deny_by_default_specs_expose_nothing_without_rules() {
        let spec = SecuritySpec::new(hospital_document_dtd()).deny_by_default();
        // With everything denied there is nothing visible below the root —
        // every reachable visible type's production is empty, so the view is
        // just the root element. (Promotion finds no Allow edge anywhere.)
        let view = derive_view(&spec).unwrap();
        assert_eq!(view.view_dtd().element_types(), vec!["hospital"]);
        let doc = sample_document();
        let m = materialize(&view, &doc).unwrap();
        assert_eq!(m.tree.len(), 1);
    }

    #[test]
    fn derived_views_compose_with_the_rewriting_pipeline() {
        // The derived view behaves exactly like a hand-written one: queries
        // on it can be rewritten and answered on the source (checked against
        // materialization). This test goes through the public ViewDefinition
        // API only, so it lives here rather than in the rewrite crate.
        let view = derive_view(&research_spec()).unwrap();
        let doc = sample_document();
        let m = materialize(&view, &doc).unwrap();
        let q = parse_path("patient[parent/patient/diagnosis/text()='heart disease']").unwrap();
        let expected = m.origins_of(&evaluate(&m.tree, m.tree.root(), &q));
        assert_eq!(expected.len(), 1, "Alice qualifies through her grandparent");
    }

    #[test]
    fn conditional_access_filters_are_embedded_in_annotations() {
        let mut spec = SecuritySpec::new(hospital_document_dtd());
        spec.annotate(
            "department",
            "patient",
            Access::Conditional(Pred::exists(parse_path("visit").unwrap())),
        );
        let view = derive_view(&spec).unwrap();
        let annotation = view.annotation("department", "patient").unwrap();
        assert!(matches!(annotation, Path::Filter(..)));
    }
}
