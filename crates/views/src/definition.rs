//! View definitions: a view DTD annotated with regular XPath queries.

use std::collections::BTreeMap;
use std::fmt;

use smoqe_xml::hospital::{hospital_document_dtd, hospital_view_dtd, HEART_DISEASE};
use smoqe_xml::{fingerprint_content_model, ContentModel, Dtd};
use smoqe_xpath::{expand_on_dtd, parse_path, ParseQueryError, Path};

/// Errors raised while building or validating a view definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ViewError {
    /// The view DTD has an edge `(A, B)` with no annotation query.
    MissingAnnotation {
        /// Parent view element type.
        parent: String,
        /// Child view element type.
        child: String,
    },
    /// An annotation was supplied for a pair that is not an edge of the view DTD.
    UnknownEdge {
        /// Parent view element type.
        parent: String,
        /// Child view element type.
        child: String,
    },
    /// The annotation query could not be parsed.
    BadQuery {
        /// Parent view element type.
        parent: String,
        /// Child view element type.
        child: String,
        /// The parser's error message.
        message: String,
    },
    /// One of the DTDs is not well-formed.
    BadDtd(String),
    /// Materialization exceeded the configured node budget (a symptom of a
    /// non-terminating view over this document, e.g. an ε-annotated cycle).
    ViewTooLarge {
        /// The configured limit that was exceeded.
        limit: usize,
    },
    /// Materialization encountered a cycle: the same (view type, origin
    /// node) pair appeared twice on one ancestor chain, so the view would
    /// be infinite.
    NonTerminating {
        /// The view element type on the cycle.
        view_type: String,
    },
}

impl fmt::Display for ViewError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ViewError::MissingAnnotation { parent, child } => {
                write!(f, "view DTD edge ({parent}, {child}) has no annotation query")
            }
            ViewError::UnknownEdge { parent, child } => {
                write!(f, "({parent}, {child}) is not an edge of the view DTD")
            }
            ViewError::BadQuery { parent, child, message } => {
                write!(f, "annotation σ({parent},{child}) does not parse: {message}")
            }
            ViewError::BadDtd(msg) => write!(f, "ill-formed DTD: {msg}"),
            ViewError::ViewTooLarge { limit } => {
                write!(f, "materialized view exceeds the node budget of {limit}")
            }
            ViewError::NonTerminating { view_type } => write!(
                f,
                "view materialization does not terminate: cycle through type <{view_type}>"
            ),
        }
    }
}

impl std::error::Error for ViewError {}

impl From<(String, String, ParseQueryError)> for ViewError {
    fn from((parent, child, err): (String, String, ParseQueryError)) -> Self {
        ViewError::BadQuery {
            parent,
            child,
            message: err.to_string(),
        }
    }
}

/// A view definition `σ : D → DV`.
#[derive(Debug, Clone)]
pub struct ViewDefinition {
    document_dtd: Dtd,
    view_dtd: Dtd,
    /// `σ(A, B)` for each edge `(A, B)` of the view DTD graph.
    annotations: BTreeMap<(String, String), Path>,
}

impl ViewDefinition {
    /// Creates a view with no annotations yet.
    pub fn new(document_dtd: Dtd, view_dtd: Dtd) -> Self {
        ViewDefinition {
            document_dtd,
            view_dtd,
            annotations: BTreeMap::new(),
        }
    }

    /// The document DTD `D`.
    pub fn document_dtd(&self) -> &Dtd {
        &self.document_dtd
    }

    /// The view DTD `DV`.
    pub fn view_dtd(&self) -> &Dtd {
        &self.view_dtd
    }

    /// Annotates the view DTD edge `(parent, child)` with an already parsed
    /// query.
    pub fn annotate(&mut self, parent: &str, child: &str, query: Path) -> Result<(), ViewError> {
        if !self.is_edge(parent, child) {
            return Err(ViewError::UnknownEdge {
                parent: parent.to_owned(),
                child: child.to_owned(),
            });
        }
        self.annotations
            .insert((parent.to_owned(), child.to_owned()), query);
        Ok(())
    }

    /// Annotates the edge `(parent, child)` with a query given as text.
    pub fn annotate_str(&mut self, parent: &str, child: &str, query: &str) -> Result<(), ViewError> {
        let parsed = parse_path(query).map_err(|e| ViewError::BadQuery {
            parent: parent.to_owned(),
            child: child.to_owned(),
            message: e.to_string(),
        })?;
        self.annotate(parent, child, parsed)
    }

    /// `true` if `(parent, child)` is an edge of the view DTD graph.
    pub fn is_edge(&self, parent: &str, child: &str) -> bool {
        self.view_dtd
            .production(parent)
            .map(|m| m.child_types().contains(&child))
            .unwrap_or(false)
    }

    /// The raw annotation `σ(parent, child)`, if present.
    pub fn annotation(&self, parent: &str, child: &str) -> Option<&Path> {
        self.annotations
            .get(&(parent.to_owned(), child.to_owned()))
    }

    /// The annotation expanded to pure `Xreg` over the **document** DTD
    /// (`//` and `*` in annotations range over document labels).
    pub fn normalized_annotation(&self, parent: &str, child: &str) -> Option<Path> {
        self.annotation(parent, child)
            .map(|p| expand_on_dtd(p, &self.document_dtd))
    }

    /// Iterates over all annotated edges `((A, B), σ(A,B))`.
    pub fn annotations(&self) -> impl Iterator<Item = (&(String, String), &Path)> {
        self.annotations.iter()
    }

    /// The size `|σ|`: the sum of the sizes of all annotation queries, the
    /// measure used in Theorems 5.1 and 6.2.
    pub fn size(&self) -> usize {
        self.annotations.values().map(Path::size).sum()
    }

    /// `true` if the view DTD (and hence the view) is recursively defined.
    pub fn is_recursive(&self) -> bool {
        self.view_dtd.is_recursive()
    }

    /// A stable fingerprint of the whole definition — both DTDs and every
    /// annotation query. Two views with the same fingerprint rewrite every
    /// query identically, so the fingerprint is usable as (part of) a
    /// compiled-query cache key in the service layer.
    ///
    /// FNV-1a over a canonical serialization (see [`fingerprint_field`]);
    /// stable across runs of the same build (it does not use
    /// [`std::hash::Hash`], whose output may vary).
    pub fn fingerprint(&self) -> u64 {
        let mut h = FINGERPRINT_SEED;
        for dtd in [&self.document_dtd, &self.view_dtd] {
            h = fingerprint_field(h, dtd.root().as_bytes());
            let mut types = dtd.element_types();
            types.sort_unstable();
            for ty in types {
                h = fingerprint_field(h, ty.as_bytes());
                if let Some(model) = dtd.production(ty) {
                    // Canonical tagged encoding — never `Debug` output, which
                    // is not a serialization contract and could drift across
                    // refactors, silently invalidating or aliasing cache keys.
                    h = fingerprint_content_model(h, model);
                }
            }
        }
        for ((parent, child), query) in &self.annotations {
            h = fingerprint_field(h, parent.as_bytes());
            h = fingerprint_field(h, child.as_bytes());
            h = fingerprint_field(h, query.to_string().as_bytes());
        }
        h
    }

    /// Checks that both DTDs are well-formed and that every edge of the view
    /// DTD carries an annotation.
    pub fn check(&self) -> Result<(), ViewError> {
        self.document_dtd
            .check_well_formed()
            .map_err(|e| ViewError::BadDtd(e.to_string()))?;
        self.view_dtd
            .check_well_formed()
            .map_err(|e| ViewError::BadDtd(e.to_string()))?;
        for ty in self.view_dtd.element_types() {
            let model = self.view_dtd.production(ty).expect("checked above");
            if matches!(model, ContentModel::Text | ContentModel::Empty) {
                continue;
            }
            for child in model.child_types() {
                if self.annotation(ty, child).is_none() {
                    return Err(ViewError::MissingAnnotation {
                        parent: ty.to_owned(),
                        child: child.to_owned(),
                    });
                }
            }
        }
        Ok(())
    }
}

// The FNV-1a primitives moved to `smoqe_xml::fingerprint` so the snapshot
// subsystem, the query service's document-label fingerprints, and view
// fingerprints all share one implementation; these re-exports keep the
// long-standing `smoqe_views::{FINGERPRINT_SEED, fingerprint_field}` paths
// working.
pub use smoqe_xml::{fingerprint_field, FINGERPRINT_SEED};

/// Builds the running example σ₀ of Fig. 1(c): the heart-disease research
/// view over the hospital document DTD.
///
/// ```text
/// σ₀(hospital, patient)  = department/patient[visit/treatment/medication/
///                           diagnosis/text() = 'heart disease']       (Q1)
/// σ₀(patient,  parent)   = parent                                     (Q2)
/// σ₀(patient,  record)   = visit                                      (Q3)
/// σ₀(parent,   patient)  = patient                                    (Q4)
/// σ₀(record,   empty)    = treatment/test                             (Q5)
/// σ₀(record,   diagnosis)= treatment/medication/diagnosis             (Q6)
/// ```
pub fn hospital_view() -> ViewDefinition {
    let mut view = ViewDefinition::new(hospital_document_dtd(), hospital_view_dtd());
    view.annotate_str(
        "hospital",
        "patient",
        &format!(
            "department/patient[visit/treatment/medication/diagnosis/text()='{HEART_DISEASE}']"
        ),
    )
    .expect("Q1");
    view.annotate_str("patient", "parent", "parent").expect("Q2");
    view.annotate_str("patient", "record", "visit").expect("Q3");
    view.annotate_str("parent", "patient", "patient").expect("Q4");
    view.annotate_str("record", "empty", "treatment/test").expect("Q5");
    view.annotate_str("record", "diagnosis", "treatment/medication/diagnosis")
        .expect("Q6");
    view.check().expect("σ₀ is complete");
    view
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hospital_view_is_complete_and_recursive() {
        let v = hospital_view();
        v.check().unwrap();
        assert!(v.is_recursive());
        assert_eq!(v.annotations().count(), 6);
        assert!(v.size() >= 6);
    }

    #[test]
    fn annotations_are_retrievable() {
        let v = hospital_view();
        assert!(v.annotation("hospital", "patient").is_some());
        assert!(v.annotation("patient", "record").is_some());
        assert!(v.annotation("record", "diagnosis").is_some());
        assert!(v.annotation("hospital", "doctor").is_none());
    }

    #[test]
    fn unknown_edges_are_rejected() {
        let mut v = ViewDefinition::new(hospital_document_dtd(), hospital_view_dtd());
        let err = v.annotate_str("hospital", "doctor", "department/doctor");
        assert_eq!(
            err,
            Err(ViewError::UnknownEdge {
                parent: "hospital".to_owned(),
                child: "doctor".to_owned()
            })
        );
    }

    #[test]
    fn missing_annotation_is_detected() {
        let mut v = ViewDefinition::new(hospital_document_dtd(), hospital_view_dtd());
        v.annotate_str("hospital", "patient", "department/patient")
            .unwrap();
        let err = v.check().unwrap_err();
        assert!(matches!(err, ViewError::MissingAnnotation { .. }));
    }

    #[test]
    fn bad_query_reports_the_edge() {
        let mut v = ViewDefinition::new(hospital_document_dtd(), hospital_view_dtd());
        let err = v.annotate_str("patient", "parent", "parent[").unwrap_err();
        assert!(matches!(err, ViewError::BadQuery { ref parent, .. } if parent == "patient"));
    }

    #[test]
    fn normalized_annotation_expands_over_document_dtd() {
        let mut v = ViewDefinition::new(hospital_document_dtd(), hospital_view_dtd());
        v.annotate_str("hospital", "patient", "department//patient")
            .unwrap();
        let normalized = v.normalized_annotation("hospital", "patient").unwrap();
        assert!(!normalized.contains_xpath_axes());
        // Every label in the expansion is a document label.
        let doc_types = v.document_dtd().element_types();
        for l in normalized.labels() {
            assert!(doc_types.contains(&l));
        }
    }

    #[test]
    fn size_measures_annotation_queries() {
        let v = hospital_view();
        // Q1 alone has size > 5; the total must exceed the number of edges.
        assert!(v.size() > 10);
    }

    #[test]
    fn fingerprint_is_stable_and_annotation_sensitive() {
        let a = hospital_view();
        let b = hospital_view();
        assert_eq!(a.fingerprint(), b.fingerprint(), "same view, same fingerprint");

        // Changing any annotation must change the fingerprint.
        let mut c = hospital_view();
        c.annotate_str("patient", "record", "visit/treatment").unwrap();
        assert_ne!(a.fingerprint(), c.fingerprint());

        // An incomplete view fingerprints differently from the full one.
        let mut partial = ViewDefinition::new(hospital_document_dtd(), hospital_view_dtd());
        partial
            .annotate_str("hospital", "patient", "department/patient")
            .unwrap();
        assert_ne!(a.fingerprint(), partial.fingerprint());
    }

    #[test]
    fn fingerprint_golden_value_is_locked() {
        // Golden value for σ₀ under the canonical content-model encoding
        // (fingerprint format v1, smoqe_xml::fingerprint). If this changes,
        // every persisted cache key and snapshot fingerprint changes with
        // it — bump deliberately, never accidentally.
        assert_eq!(hospital_view().fingerprint(), 0x455a_1fb1_4ae6_96a4);
    }

    #[test]
    fn error_display_is_informative() {
        let e = ViewError::MissingAnnotation {
            parent: "a".into(),
            child: "b".into(),
        };
        assert!(e.to_string().contains("(a, b)"));
        let e2 = ViewError::NonTerminating {
            view_type: "patient".into(),
        };
        assert!(e2.to_string().contains("patient"));
    }
}
