//! # smoqe-views
//!
//! XML views defined by annotating a view DTD (Section 2.3 of the paper).
//!
//! A view is a mapping `σ : D → DV` in the global-as-view style: for every
//! edge `(A, B)` of the view DTD graph, `σ(A, B)` is a regular XPath query
//! over documents of the document DTD `D`. Given a document `T` of `D`, the
//! view `σ(T)` is generated top-down: the view root corresponds to the root
//! of `T`; an `A`-element of the view with *origin* `u` in `T` gets, for
//! each child type `B`, one `B`-child per node of `u[[σ(A,B)]]`, whose origin
//! is that node. Text-typed view elements copy their origin's PCDATA.
//!
//! This crate provides:
//!
//! * [`ViewDefinition`] — the annotated view DTD, with well-formedness
//!   checks and the `|σ|` size measure used in the paper's bounds;
//! * [`materialize()`] — the reference view-materialization procedure used as
//!   correctness oracle: `Q(σ(T))` computed the slow way, against which the
//!   rewriting pipeline's `Q'(T)` is compared;
//! * [`hospital_view`] — the running example σ₀ of Fig. 1(c), exposing only
//!   heart-disease patients, their parent hierarchy and their diagnoses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod definition;
pub mod domains;
pub mod materialize;
pub mod security;

pub use domains::{
    bom_security_spec, bom_view, logs_security_spec, logs_view, social_view,
};
pub use definition::{
    fingerprint_field, hospital_view, ViewDefinition, ViewError, FINGERPRINT_SEED,
};
pub use materialize::{materialize, MaterializedView};
pub use security::{derive_view, Access, SecuritySpec};
