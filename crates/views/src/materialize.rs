//! Reference view materialization: computing `σ(T)` explicitly.
//!
//! The paper's whole point is to *avoid* materializing views; this module
//! exists (a) as the correctness oracle — `Q(σ(T))` computed naively must
//! equal the rewritten query evaluated on `T` — and (b) as the baseline the
//! benchmarks compare against when measuring the cost of materialization.

use std::collections::BTreeSet;

use smoqe_xml::{ContentModel, NodeId, XmlTree, XmlTreeBuilder};
use smoqe_xpath::evaluate;

use crate::definition::{ViewDefinition, ViewError};

/// Default cap on the number of nodes a materialized view may contain,
/// guarding against non-terminating view definitions.
pub const DEFAULT_NODE_BUDGET: usize = 10_000_000;

/// A materialized view: the view tree plus, for every view node, the source
/// node it originates from.
#[derive(Debug, Clone)]
pub struct MaterializedView {
    /// The view document `σ(T)`.
    pub tree: XmlTree,
    /// `origins[i]` is the source node of view node `i` (indexed by
    /// [`NodeId::index`] of the view tree).
    pub origins: Vec<NodeId>,
}

impl MaterializedView {
    /// The origin (source node) of a view node.
    pub fn origin(&self, view_node: NodeId) -> NodeId {
        self.origins[view_node.index()]
    }

    /// Translates a set of view nodes into their origins in the source
    /// document. Used to compare answers of queries on the view against
    /// answers of rewritten queries on the source.
    pub fn origins_of(&self, view_nodes: &BTreeSet<NodeId>) -> BTreeSet<NodeId> {
        view_nodes.iter().map(|&n| self.origin(n)).collect()
    }
}

/// Materializes `view` over the document `tree` with the default node budget.
pub fn materialize(view: &ViewDefinition, tree: &XmlTree) -> Result<MaterializedView, ViewError> {
    materialize_with_budget(view, tree, DEFAULT_NODE_BUDGET)
}

/// Materializes `view` over `tree`, failing once the view exceeds `budget`
/// nodes.
pub fn materialize_with_budget(
    view: &ViewDefinition,
    tree: &XmlTree,
    budget: usize,
) -> Result<MaterializedView, ViewError> {
    view.check()?;
    let root_type = view.view_dtd().root().to_owned();
    let mut builder = XmlTreeBuilder::new();
    let mut origins: Vec<NodeId> = Vec::new();

    let view_root = builder.root(&root_type);
    origins.push(tree.root());
    copy_text_if_needed(view, tree, &mut builder, view_root, tree.root(), &root_type);

    // Explicit work stack of (view node, view type, origin, ancestor chain of
    // (type, origin) pairs) to detect non-terminating recursion.
    type Frame = (NodeId, String, NodeId, Vec<(String, NodeId)>);
    let mut stack: Vec<Frame> = vec![(
        view_root,
        root_type.clone(),
        tree.root(),
        vec![(root_type, tree.root())],
    )];

    while let Some((view_node, view_type, origin, chain)) = stack.pop() {
        if origins.len() > budget {
            return Err(ViewError::ViewTooLarge { limit: budget });
        }
        let production = view
            .view_dtd()
            .production(&view_type)
            .ok_or_else(|| ViewError::BadDtd(format!("no production for {view_type}")))?
            .clone();
        let child_types: Vec<String> = match production {
            ContentModel::Text | ContentModel::Empty => Vec::new(),
            ContentModel::Sequence(children) => {
                children.into_iter().map(|c| c.ty).collect()
            }
            ContentModel::Choice(options) => options,
        };
        for child_type in child_types {
            let query = view
                .normalized_annotation(&view_type, &child_type)
                .ok_or_else(|| ViewError::MissingAnnotation {
                    parent: view_type.clone(),
                    child: child_type.clone(),
                })?;
            let selected = evaluate(tree, origin, &query);
            for source_child in selected {
                if chain
                    .iter()
                    .any(|(t, o)| *t == child_type && *o == source_child)
                {
                    return Err(ViewError::NonTerminating {
                        view_type: child_type.clone(),
                    });
                }
                let view_child = builder.child(view_node, &child_type);
                origins.push(source_child);
                copy_text_if_needed(view, tree, &mut builder, view_child, source_child, &child_type);
                let mut child_chain = chain.clone();
                child_chain.push((child_type.clone(), source_child));
                stack.push((view_child, child_type.clone(), source_child, child_chain));
                if origins.len() > budget {
                    return Err(ViewError::ViewTooLarge { limit: budget });
                }
            }
        }
    }

    Ok(MaterializedView {
        tree: builder.finish(),
        origins,
    })
}

/// Text-typed view elements copy the PCDATA of their origin node.
fn copy_text_if_needed(
    view: &ViewDefinition,
    tree: &XmlTree,
    builder: &mut XmlTreeBuilder,
    view_node: NodeId,
    origin: NodeId,
    view_type: &str,
) {
    if matches!(view.view_dtd().production(view_type), Some(ContentModel::Text)) {
        if let Some(text) = tree.text(origin) {
            builder.set_text(view_node, text);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::definition::hospital_view;
    use smoqe_xml::hospital::HEART_DISEASE;
    use smoqe_xml::XmlTreeBuilder;
    use smoqe_xpath::parse_path;

    /// A small hospital document with two heart-disease patients (one of
    /// which has a grandparent with heart disease) and one unrelated patient.
    fn hospital_document() -> XmlTree {
        let mut b = XmlTreeBuilder::new();
        let root = b.root("hospital");
        let dept = b.child(root, "department");
        b.child_with_text(dept, "name", "Cardiology");

        // Patient Alice: heart disease; mother has lung disease; grandmother
        // has heart disease; a sibling (must NOT appear in the view).
        let alice = patient(&mut b, dept, "Alice", Some(HEART_DISEASE));
        let alice_mother = add_parent(&mut b, alice, "Mona", Some("lung disease"));
        add_parent(&mut b, alice_mother, "Greta", Some(HEART_DISEASE));
        add_sibling(&mut b, alice, "Sid", Some(HEART_DISEASE));

        // Patient Bob: heart disease, no family history, one test visit.
        let bob = patient(&mut b, dept, "Bob", Some(HEART_DISEASE));
        add_test_visit(&mut b, bob);

        // Patient Carol: flu only — must not appear in the view at all.
        patient(&mut b, dept, "Carol", Some("flu"));

        b.finish()
    }

    /// Adds a patient with name, address and one medication visit carrying
    /// `diagnosis` (if any).
    fn patient(
        b: &mut XmlTreeBuilder,
        parent_node: NodeId,
        name: &str,
        diagnosis: Option<&str>,
    ) -> NodeId {
        let p = b.child(parent_node, "patient");
        b.child_with_text(p, "pname", name);
        let addr = b.child(p, "address");
        b.child_with_text(addr, "street", "1 Infirmary St");
        b.child_with_text(addr, "city", "Edinburgh");
        b.child_with_text(addr, "zip", "EH1");
        if let Some(d) = diagnosis {
            let visit = b.child(p, "visit");
            b.child_with_text(visit, "date", "2006-05-01");
            let treatment = b.child(visit, "treatment");
            let medication = b.child(treatment, "medication");
            b.child_with_text(medication, "type", "tablet");
            b.child_with_text(medication, "diagnosis", d);
        }
        p
    }

    fn add_parent(
        b: &mut XmlTreeBuilder,
        child_patient: NodeId,
        name: &str,
        diagnosis: Option<&str>,
    ) -> NodeId {
        let par = b.child(child_patient, "parent");
        patient_under(b, par, name, diagnosis)
    }

    fn add_sibling(
        b: &mut XmlTreeBuilder,
        of_patient: NodeId,
        name: &str,
        diagnosis: Option<&str>,
    ) -> NodeId {
        let sib = b.child(of_patient, "sibling");
        patient_under(b, sib, name, diagnosis)
    }

    fn patient_under(
        b: &mut XmlTreeBuilder,
        wrapper: NodeId,
        name: &str,
        diagnosis: Option<&str>,
    ) -> NodeId {
        let p = b.child(wrapper, "patient");
        b.child_with_text(p, "pname", name);
        let addr = b.child(p, "address");
        b.child_with_text(addr, "street", "2 Lauriston Pl");
        b.child_with_text(addr, "city", "Edinburgh");
        b.child_with_text(addr, "zip", "EH3");
        if let Some(d) = diagnosis {
            let visit = b.child(p, "visit");
            b.child_with_text(visit, "date", "1980-02-01");
            let treatment = b.child(visit, "treatment");
            let medication = b.child(treatment, "medication");
            b.child_with_text(medication, "type", "tablet");
            b.child_with_text(medication, "diagnosis", d);
        }
        p
    }

    fn add_test_visit(b: &mut XmlTreeBuilder, patient_node: NodeId) {
        let visit = b.child(patient_node, "visit");
        b.child_with_text(visit, "date", "2006-06-01");
        let treatment = b.child(visit, "treatment");
        let test = b.child(treatment, "test");
        b.child_with_text(test, "type", "ECG");
    }

    #[test]
    fn view_conforms_to_the_view_dtd() {
        let view = hospital_view();
        let doc = hospital_document();
        view.document_dtd().validate(&doc).unwrap();
        let materialized = materialize(&view, &doc).unwrap();
        view.view_dtd().validate(&materialized.tree).unwrap();
    }

    #[test]
    fn only_heart_disease_patients_are_exposed() {
        let view = hospital_view();
        let doc = hospital_document();
        let m = materialize(&view, &doc).unwrap();
        // Top-level view patients: Alice and Bob, not Carol.
        let q = parse_path("patient").unwrap();
        let top = evaluate(&m.tree, m.tree.root(), &q);
        assert_eq!(top.len(), 2);
    }

    #[test]
    fn parent_hierarchy_is_exposed_but_siblings_are_not() {
        let view = hospital_view();
        let doc = hospital_document();
        let m = materialize(&view, &doc).unwrap();
        // Alice's mother and grandmother appear through the parent chain.
        let q = parse_path("patient/parent/patient/parent/patient").unwrap();
        assert_eq!(evaluate(&m.tree, m.tree.root(), &q).len(), 1);
        // No node in the view originates from a sibling's subtree: the view
        // tree simply has no 'sibling' label at all.
        assert!(m.tree.labels().get("sibling").is_none());
        // And no pname / address / doctor data is exposed either.
        for hidden in ["pname", "address", "doctor", "street"] {
            assert!(m.tree.labels().get(hidden).is_none(), "{hidden} leaked");
        }
    }

    #[test]
    fn records_carry_diagnosis_text_or_are_empty() {
        let view = hospital_view();
        let doc = hospital_document();
        let m = materialize(&view, &doc).unwrap();
        // Bob's test visit becomes an empty record; medication visits carry
        // the diagnosis text.
        let diag = parse_path("patient/record/diagnosis").unwrap();
        let diags = evaluate(&m.tree, m.tree.root(), &diag);
        assert!(!diags.is_empty());
        for d in &diags {
            assert!(m.tree.text(*d).is_some());
        }
        let empty = parse_path("patient/record/empty").unwrap();
        assert_eq!(evaluate(&m.tree, m.tree.root(), &empty).len(), 1);
    }

    #[test]
    fn origins_point_back_into_the_source() {
        let view = hospital_view();
        let doc = hospital_document();
        let m = materialize(&view, &doc).unwrap();
        for view_node in m.tree.node_ids() {
            let origin = m.origin(view_node);
            assert!(origin.index() < doc.len());
            // Text-typed view nodes carry their origin's text.
            if m.tree.label_name(view_node) == "diagnosis" {
                assert_eq!(m.tree.text(view_node), doc.text(origin));
            }
        }
        // The view root originates from the document root.
        assert_eq!(m.origin(m.tree.root()), doc.root());
    }

    #[test]
    fn example_1_1_view_query_answer() {
        // Q: patient[*//record/diagnosis/text()='heart disease'] on the view
        // selects patients whose ancestors also had heart disease: Alice
        // (through her grandmother), but not Bob.
        let view = hospital_view();
        let doc = hospital_document();
        let m = materialize(&view, &doc).unwrap();
        let q = parse_path(&format!(
            "patient[*//record/diagnosis/text()='{HEART_DISEASE}']"
        ))
        .unwrap();
        let result = evaluate(&m.tree, m.tree.root(), &q);
        assert_eq!(result.len(), 1);
    }

    #[test]
    fn budget_is_enforced() {
        let view = hospital_view();
        let doc = hospital_document();
        let err = materialize_with_budget(&view, &doc, 3).unwrap_err();
        assert!(matches!(err, ViewError::ViewTooLarge { limit: 3 }));
    }

    #[test]
    fn non_terminating_view_is_detected() {
        // A pathological view: the annotation σ(part, part) = '.' keeps the
        // origin in place, so the recursive view type 'part' would unfold
        // forever over any document.
        use smoqe_xml::{Child, ContentModel, Dtd};
        let mut doc_dtd = Dtd::new("part");
        doc_dtd
            .define("part", ContentModel::Sequence(vec![Child::star("part")]));
        let mut view_dtd = Dtd::new("part");
        view_dtd
            .define("part", ContentModel::Sequence(vec![Child::star("part")]));
        let mut view = crate::definition::ViewDefinition::new(doc_dtd, view_dtd);
        view.annotate_str("part", "part", ".").unwrap();

        let mut b = XmlTreeBuilder::new();
        b.root("part");
        let doc = b.finish();
        let err = materialize(&view, &doc).unwrap_err();
        assert!(matches!(err, ViewError::NonTerminating { .. }));
    }
}
