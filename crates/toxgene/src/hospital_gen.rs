//! Generator for documents conforming to the hospital DTD of Fig. 1(a).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use smoqe_xml::hospital::HEART_DISEASE;
use smoqe_xml::{NodeId, XmlTree, XmlTreeBuilder};

/// Configuration of the hospital document generator.
///
/// The defaults generate a small document suitable for tests; the benchmark
/// harness scales `patients` to reproduce the paper's 7–70 MB series.
#[derive(Debug, Clone)]
pub struct HospitalConfig {
    /// Number of in-patients (top-level patients across all departments).
    pub patients: usize,
    /// Number of departments the patients are distributed over.
    pub departments: usize,
    /// Fraction of patients (and ancestors) whose visit carries a
    /// heart-disease diagnosis — the selectivity knob of the paper's queries.
    pub heart_disease_fraction: f64,
    /// Maximum length of the `parent/patient` ancestor chain (the recursive
    /// part of the DTD). The paper's documents have maximal depth 13, which
    /// corresponds to an ancestor depth of 2 with our element nesting.
    pub max_ancestor_depth: usize,
    /// Probability that a patient has a sibling entry (data outside the
    /// research view, i.e. pure pruning/security ballast).
    pub sibling_probability: f64,
    /// Number of visits recorded per patient.
    pub visits_per_patient: usize,
    /// Fraction of visits that are tests (no diagnosis) rather than
    /// medications.
    pub test_visit_fraction: f64,
    /// RNG seed; the same configuration always generates the same document.
    pub seed: u64,
}

impl Default for HospitalConfig {
    fn default() -> Self {
        HospitalConfig {
            patients: 100,
            departments: 4,
            heart_disease_fraction: 0.3,
            max_ancestor_depth: 2,
            sibling_probability: 0.3,
            visits_per_patient: 2,
            test_visit_fraction: 0.3,
            seed: 0x5eed_500e,
        }
    }
}

impl HospitalConfig {
    /// A configuration sized so that the serialized document is roughly
    /// `megabytes` MB, mirroring the paper's 7 MB ≈ 10,000 patients scale.
    pub fn with_approx_megabytes(megabytes: usize) -> Self {
        HospitalConfig {
            patients: megabytes.max(1) * 1430,
            ..Self::default()
        }
    }
}

/// Other diagnoses used to dilute the heart-disease selectivity.
const OTHER_DIAGNOSES: &[&str] = &[
    "lung disease",
    "brain disease",
    "influenza",
    "fracture",
    "diabetes",
    "hypertension",
];

const STREETS: &[&str] = &["1 Infirmary St", "2 Lauriston Pl", "3 Crichton St", "4 Chambers St"];
const CITIES: &[&str] = &["Edinburgh", "Glasgow", "Dundee", "Aberdeen"];
const SPECIALTIES: &[&str] = &["cardiology", "oncology", "neurology", "general"];

/// Generates a hospital document according to `config`.
///
/// The output conforms to [`smoqe_xml::hospital::hospital_document_dtd`]
/// (checked by the tests below) and is fully determined by the seed.
pub fn generate_hospital(config: &HospitalConfig) -> XmlTree {
    generate_with(config, |patient, departments| patient % departments)
}

/// Generates a hospital document with a deliberately skewed department
/// fan-out: the first `⌊dominant_fraction · patients⌋` patients all land in
/// department 0, the rest are spread round-robin over the remaining
/// departments. Everything else — patient content, RNG stream, doctors —
/// is byte-identical to [`generate_hospital`] at the same configuration,
/// so evaluation answers over the whole document are unaffected; only the
/// subtree shape (one dominant top-level subtree) changes. This is the
/// adversarial input for the parallel evaluator's shard re-splitting.
pub fn generate_skewed_hospital(config: &HospitalConfig, dominant_fraction: f64) -> XmlTree {
    let dominant =
        (config.patients as f64 * dominant_fraction.clamp(0.0, 1.0)).floor() as usize;
    generate_with(config, move |patient, departments| {
        if patient < dominant || departments == 1 {
            0
        } else {
            1 + (patient - dominant) % (departments - 1)
        }
    })
}

/// Generates a pathological-depth hospital document: one department with a
/// single patient whose `parent/patient` ancestor chain is `depth` levels
/// deep. Built **iteratively**, so the generator itself never overflows —
/// this is the adversarial input for the stack-safety of parsers,
/// serializers and tree-walking engines. Every patient on the chain has one
/// heart-disease visit, so the σ₀ view is exactly as deep as the document.
pub fn generate_deep_hospital(depth: usize, seed: u64) -> XmlTree {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = XmlTreeBuilder::new();
    let root = b.root("hospital");
    let dept = b.child(root, "department");
    b.child_with_text(dept, "name", "Deep");
    let mut wrapper = dept;
    for level in 0..=depth {
        let p = b.child(wrapper, "patient");
        b.child_with_text(p, "pname", &format!("Patient-{level}"));
        let addr = b.child(p, "address");
        b.child_with_text(addr, "street", STREETS[level % STREETS.len()]);
        b.child_with_text(addr, "city", CITIES[level % CITIES.len()]);
        b.child_with_text(addr, "zip", &format!("EH{}", level % 17 + 1));
        let visit = b.child(p, "visit");
        b.child_with_text(visit, "date", &format!("{}-01-15", 1950 + level % 77));
        let treatment = b.child(visit, "treatment");
        let medication = b.child(treatment, "medication");
        b.child_with_text(medication, "type", "tablet");
        // An occasional other diagnosis keeps the view chain from being
        // fully regular without bounding its depth.
        let diagnosis = if rng.gen_bool(0.95) {
            HEART_DISEASE
        } else {
            OTHER_DIAGNOSES[level % OTHER_DIAGNOSES.len()]
        };
        b.child_with_text(medication, "diagnosis", diagnosis);
        if level < depth {
            wrapper = b.child(p, "parent");
        }
    }
    b.finish()
}

/// Shared generator body: `assign(patient_index, departments)` names the
/// department each patient lands in; everything else is policy-free.
fn generate_with(
    config: &HospitalConfig,
    assign: impl Fn(usize, usize) -> usize,
) -> XmlTree {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut b = XmlTreeBuilder::new();
    let root = b.root("hospital");

    let departments = config.departments.max(1);
    let mut department_nodes = Vec::with_capacity(departments);
    for d in 0..departments {
        let dept = b.child(root, "department");
        b.child_with_text(dept, "name", &format!("Department-{d}"));
        department_nodes.push(dept);
    }

    let mut gen = Generator {
        config,
        rng: &mut rng,
        builder: &mut b,
        counter: 0,
    };
    for i in 0..config.patients {
        let dept = department_nodes[assign(i, departments)];
        gen.patient(dept, config.max_ancestor_depth, true);
    }

    // A couple of doctors per department keeps the document shape faithful
    // (doctor data exists in the source but never in the research view).
    for (d, &dept) in department_nodes.iter().enumerate() {
        for k in 0..2 {
            let doctor = b.child(dept, "doctor");
            b.child_with_text(doctor, "dname", &format!("Dr. {d}-{k}"));
            let specialty = SPECIALTIES[(d + k) % SPECIALTIES.len()];
            b.child_with_text(doctor, "specialty", specialty);
        }
    }

    b.finish()
}

struct Generator<'a> {
    config: &'a HospitalConfig,
    rng: &'a mut StdRng,
    builder: &'a mut XmlTreeBuilder,
    counter: usize,
}

impl Generator<'_> {
    /// Emits a patient element under `wrapper` (a department, `parent` or
    /// `sibling` element), recursing into ancestors up to `ancestors_left`.
    fn patient(&mut self, wrapper: NodeId, ancestors_left: usize, allow_sibling: bool) -> NodeId {
        self.counter += 1;
        let id = self.counter;
        let b = &mut *self.builder;
        let p = b.child(wrapper, "patient");
        b.child_with_text(p, "pname", &format!("Patient-{id}"));
        let addr = b.child(p, "address");
        b.child_with_text(addr, "street", STREETS[id % STREETS.len()]);
        b.child_with_text(addr, "city", CITIES[id % CITIES.len()]);
        b.child_with_text(addr, "zip", &format!("EH{}", id % 17 + 1));

        for _ in 0..self.config.visits_per_patient.max(1) {
            self.visit(p);
        }

        if ancestors_left > 0 {
            // Between one and two parents, biased towards one.
            let parents = if self.rng.gen_bool(0.25) { 2 } else { 1 };
            for _ in 0..parents {
                let parent = self.builder.child(p, "parent");
                self.patient(parent, ancestors_left - 1, false);
            }
        }
        if allow_sibling && self.rng.gen_bool(self.config.sibling_probability) {
            let sibling = self.builder.child(p, "sibling");
            self.patient(sibling, 0, false);
        }
        p
    }

    fn visit(&mut self, patient: NodeId) {
        let b = &mut *self.builder;
        let visit = b.child(patient, "visit");
        let year = 1990 + (self.counter % 17);
        let month = 1 + (self.counter % 12);
        b.child_with_text(visit, "date", &format!("{year}-{month:02}-15"));
        let treatment = b.child(visit, "treatment");
        if self.rng.gen_bool(self.config.test_visit_fraction) {
            let test = b.child(treatment, "test");
            b.child_with_text(test, "type", "ECG");
        } else {
            let medication = b.child(treatment, "medication");
            b.child_with_text(medication, "type", "tablet");
            let diagnosis = if self.rng.gen_bool(self.config.heart_disease_fraction) {
                HEART_DISEASE
            } else {
                OTHER_DIAGNOSES[self.rng.gen_range(0..OTHER_DIAGNOSES.len())]
            };
            b.child_with_text(medication, "diagnosis", diagnosis);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smoqe_xml::hospital::hospital_document_dtd;
    use smoqe_xpath::{evaluate, parse_path};

    #[test]
    fn generated_documents_conform_to_the_dtd() {
        let config = HospitalConfig {
            patients: 50,
            ..Default::default()
        };
        let doc = generate_hospital(&config);
        hospital_document_dtd().validate(&doc).unwrap();
        doc.check_consistency().unwrap();
    }

    #[test]
    fn generation_is_deterministic() {
        let config = HospitalConfig::default();
        let a = generate_hospital(&config);
        let b = generate_hospital(&config);
        assert_eq!(a.len(), b.len());
        assert_eq!(
            smoqe_xml::to_xml_string(&a),
            smoqe_xml::to_xml_string(&b)
        );
        let other = generate_hospital(&HospitalConfig { seed: 99, ..config });
        assert_ne!(
            smoqe_xml::to_xml_string(&a),
            smoqe_xml::to_xml_string(&other)
        );
    }

    #[test]
    fn size_scales_with_patient_count() {
        let small = generate_hospital(&HospitalConfig {
            patients: 20,
            ..Default::default()
        });
        let large = generate_hospital(&HospitalConfig {
            patients: 200,
            ..Default::default()
        });
        assert!(large.len() > 5 * small.len());
    }

    #[test]
    fn selectivity_follows_the_configuration() {
        let none = generate_hospital(&HospitalConfig {
            patients: 100,
            heart_disease_fraction: 0.0,
            ..Default::default()
        });
        let all = generate_hospital(&HospitalConfig {
            patients: 100,
            heart_disease_fraction: 1.0,
            test_visit_fraction: 0.0,
            ..Default::default()
        });
        let q = parse_path(
            "department/patient[visit/treatment/medication/diagnosis/text()='heart disease']",
        )
        .unwrap();
        assert!(evaluate(&none, none.root(), &q).is_empty());
        assert_eq!(evaluate(&all, all.root(), &q).len(), 100);
    }

    #[test]
    fn ancestor_depth_bounds_tree_depth() {
        let shallow = generate_hospital(&HospitalConfig {
            patients: 30,
            max_ancestor_depth: 0,
            sibling_probability: 0.0,
            ..Default::default()
        });
        // hospital/department/patient/visit/treatment/medication/diagnosis = 7
        assert_eq!(shallow.max_depth(), 7);
        let deep = generate_hospital(&HospitalConfig {
            patients: 30,
            max_ancestor_depth: 3,
            ..Default::default()
        });
        assert!(deep.max_depth() > shallow.max_depth());
        // Depth grows by 2 per ancestor level (parent + patient): 7 + 2*3 = 13,
        // matching the paper's "maximal depth of the trees is 13".
        assert!(deep.max_depth() <= 13);
    }

    #[test]
    fn skewed_generator_concentrates_one_department() {
        let config = HospitalConfig {
            patients: 100,
            departments: 4,
            ..Default::default()
        };
        let doc = generate_skewed_hospital(&config, 0.8);
        hospital_document_dtd().validate(&doc).unwrap();
        doc.check_consistency().unwrap();
        let depts = doc.children(doc.root());
        assert_eq!(depts.len(), 4);
        let sizes: Vec<usize> = depts.iter().map(|&d| doc.subtree_size(d)).collect();
        let total: usize = sizes.iter().sum();
        assert!(
            sizes[0] * 10 >= total * 8,
            "department 0 holds ≥80% of the nodes: {sizes:?}"
        );

        // Same RNG stream as the uniform generator: answers over the whole
        // document are unchanged, only the subtree shape differs.
        let uniform = generate_hospital(&config);
        assert_eq!(doc.len(), uniform.len());
        let q = parse_path("//patient[visit/treatment/medication/diagnosis/text()='heart disease']")
            .unwrap();
        assert_eq!(
            evaluate(&doc, doc.root(), &q).len(),
            evaluate(&uniform, uniform.root(), &q).len()
        );
    }

    #[test]
    fn approx_megabytes_scales_roughly_linearly() {
        let one = HospitalConfig::with_approx_megabytes(1);
        let two = HospitalConfig::with_approx_megabytes(2);
        assert_eq!(two.patients, 2 * one.patients);
    }
}
