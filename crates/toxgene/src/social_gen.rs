//! Generator for documents conforming to the social-network DTD
//! (`smoqe_xml::domains::social_document_dtd`) — the domain whose *view
//! definition* is heavily recursive.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use smoqe_xml::{NodeId, XmlTree, XmlTreeBuilder};

/// Configuration of the social document generator.
#[derive(Debug, Clone)]
pub struct SocialConfig {
    /// Number of top-level members.
    pub members: usize,
    /// Maximum friend-nesting depth (the document recursion).
    pub friend_depth: usize,
    /// Friends per member at each level.
    pub friends_per_member: usize,
    /// Posts per member.
    pub posts_per_member: usize,
    /// Fraction of members carrying the `banned` marker — the knob of the
    /// view's negated filters. `1.0` produces an empty view.
    pub banned_fraction: f64,
    /// Fraction of posts tagged `private` (hidden by the view's post
    /// filter).
    pub private_fraction: f64,
    /// RNG seed; the same configuration always generates the same document.
    pub seed: u64,
}

impl Default for SocialConfig {
    fn default() -> Self {
        SocialConfig {
            members: 6,
            friend_depth: 3,
            friends_per_member: 2,
            posts_per_member: 2,
            banned_fraction: 0.2,
            private_fraction: 0.3,
            seed: 0x50c1_a175,
        }
    }
}

const TAGS: &[&str] = &["travel", "food", "music", "private"];

/// Generates a social document according to `config`.
pub fn generate_social(config: &SocialConfig) -> XmlTree {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut b = XmlTreeBuilder::new();
    let root = b.root("network");
    let mut counter = 0usize;
    for _ in 0..config.members.max(1) {
        emit_member(config, &mut rng, &mut b, &mut counter, root, config.friend_depth);
    }
    b.finish()
}

/// Emits one member under `wrapper` (the network root or a `friend`
/// element), recursing into nested friends while the depth budget lasts.
fn emit_member(
    config: &SocialConfig,
    rng: &mut StdRng,
    b: &mut XmlTreeBuilder,
    counter: &mut usize,
    wrapper: NodeId,
    depth_left: usize,
) -> NodeId {
    *counter += 1;
    let id = *counter;
    let m = b.child(wrapper, "member");
    b.child_with_text(m, "mid", &format!("{id}"));
    b.child_with_text(m, "handle", &format!("user-{id}"));
    if rng.gen_bool(config.banned_fraction) {
        b.child(m, "banned");
    }
    if depth_left > 0 {
        for _ in 0..config.friends_per_member {
            let f = b.child(m, "friend");
            emit_member(config, rng, b, counter, f, depth_left - 1);
        }
    }
    for p in 0..config.posts_per_member {
        let post = b.child(m, "post");
        b.child_with_text(post, "content", &format!("post-{id}-{p}"));
        let tag = if rng.gen_bool(config.private_fraction) {
            "private"
        } else {
            TAGS[(id + p) % 3]
        };
        b.child_with_text(post, "tag", tag);
    }
    m
}

/// Generates a pathological-depth social document: one top-level member
/// with a single friend chain `depth` levels deep, each member posting
/// once. Built **iteratively** — the deep shape for the recursive *view*
/// annotations ((friend/member)* closes over the whole chain).
pub fn generate_deep_social(depth: usize, seed: u64) -> XmlTree {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = XmlTreeBuilder::new();
    let root = b.root("network");
    let mut wrapper = root;
    for level in 0..depth.max(1) {
        let m = b.child(wrapper, "member");
        b.child_with_text(m, "mid", &format!("{level}"));
        b.child_with_text(m, "handle", &format!("user-{level}"));
        // Banned members cut the view's member recursion but not the
        // document chain; keep them rare so the view stays deep too.
        if rng.gen_bool(0.02) {
            b.child(m, "banned");
        }
        // Content-model order: friends come before posts.
        wrapper = b.child(m, "friend");
        let post = b.child(m, "post");
        b.child_with_text(post, "content", &format!("post-{level}"));
        b.child_with_text(post, "tag", TAGS[level % 3]);
    }
    // The innermost friend wrapper needs its member to conform to the DTD.
    let last = b.child(wrapper, "member");
    b.child_with_text(last, "mid", "last");
    b.child_with_text(last, "handle", "user-last");
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use smoqe_xml::domains::social_document_dtd;

    #[test]
    fn generated_documents_conform_to_the_dtd() {
        let doc = generate_social(&SocialConfig::default());
        social_document_dtd().validate(&doc).unwrap();
        doc.check_consistency().unwrap();
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_social(&SocialConfig::default());
        let b = generate_social(&SocialConfig::default());
        assert_eq!(smoqe_xml::to_xml_string(&a), smoqe_xml::to_xml_string(&b));
    }

    #[test]
    fn deep_generator_reaches_the_requested_depth() {
        let doc = generate_deep_social(150, 11);
        social_document_dtd().validate(&doc).unwrap();
        // Each level adds member/friend (2) to the spine.
        assert!(doc.max_depth() >= 300, "depth {}", doc.max_depth());
    }

    #[test]
    fn banned_everyone_empties_the_view_roots() {
        use smoqe_xpath::{evaluate, parse_path};
        let doc = generate_social(&SocialConfig {
            banned_fraction: 1.0,
            ..Default::default()
        });
        let q = parse_path("member[not(banned)]").unwrap();
        assert!(evaluate(&doc, doc.root(), &q).is_empty());
    }
}
