//! # smoqe-toxgene
//!
//! Synthetic XML data generation — the stand-in for the ToXGene generator
//! used in the paper's experimental study (Section 7).
//!
//! The paper generates documents conforming to the recursive hospital DTD
//! of Fig. 1(a), from 7 MB to 70 MB in 7 MB increments, where each
//! increment "roughly corresponds to adding the medical history of 10,000
//! patients", trees have maximal depth 13, and text nodes are small but
//! numerous so that query selectivity can be controlled.
//!
//! [`generate_hospital`] reproduces exactly those knobs: number of
//! patients, ancestor-chain depth (the source of DTD recursion), sibling
//! probability, the fraction of patients diagnosed with heart disease
//! (query selectivity) and a deterministic seed. [`dtd_random`] additionally
//! provides a generic DTD-driven generator used by the property-based test
//! suite to produce arbitrary conforming documents.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bom_gen;
pub mod domains;
pub mod dtd_random;
pub mod hospital_gen;
pub mod logs_gen;
pub mod social_gen;

pub use bom_gen::{generate_bom, generate_deep_bom, BomConfig};
pub use domains::{all_domains, domain, DocShape, Domain};
pub use dtd_random::{generate_from_dtd, DtdGenConfig};
pub use hospital_gen::{
    generate_deep_hospital, generate_hospital, generate_skewed_hospital, HospitalConfig,
};
pub use logs_gen::{generate_alias_explosion, generate_logs, LogsConfig};
pub use social_gen::{generate_deep_social, generate_social, SocialConfig};
