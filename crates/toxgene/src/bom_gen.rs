//! Generator for documents conforming to the bill-of-materials DTD
//! (`smoqe_xml::domains::bom_document_dtd`) — the deeply recursive domain.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use smoqe_xml::domains::DOMESTIC;
use smoqe_xml::{NodeId, XmlTree, XmlTreeBuilder};

/// Configuration of the bom document generator.
#[derive(Debug, Clone)]
pub struct BomConfig {
    /// Number of products in the catalogue.
    pub products: usize,
    /// Number of suppliers (pure security ballast — never in the view).
    pub suppliers: usize,
    /// Maximum sub-assembly nesting depth below a product.
    pub max_assembly_depth: usize,
    /// Parts per assembly (fan-out of the recursion).
    pub parts_per_assembly: usize,
    /// Fraction of parts whose origin is `domestic` — the selectivity knob
    /// of the bom view's conditional rule.
    pub domestic_fraction: f64,
    /// Probability that a part carries a nested sub-assembly (recursion
    /// continues). `1.0` drives every part to the full depth budget.
    pub recursion_probability: f64,
    /// Fraction of the recursion budget concentrated on the *first* part of
    /// each assembly: at `1.0` only the first part recurses, producing one
    /// deep skewed chain per product (skew composed with recursion).
    pub skew: f64,
    /// RNG seed; the same configuration always generates the same document.
    pub seed: u64,
}

impl Default for BomConfig {
    fn default() -> Self {
        BomConfig {
            products: 8,
            suppliers: 3,
            max_assembly_depth: 3,
            parts_per_assembly: 3,
            domestic_fraction: 0.5,
            recursion_probability: 0.6,
            skew: 0.0,
            seed: 0xb0b0_cafe,
        }
    }
}

const REGIONS: &[&str] = &["EMEA", "APAC", "AMER"];
const ORIGINS: &[&str] = &["overseas", "offshore", "unknown"];

/// Generates a bom document according to `config`.
pub fn generate_bom(config: &BomConfig) -> XmlTree {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut b = XmlTreeBuilder::new();
    let root = b.root("catalog");

    for s in 0..config.suppliers {
        let supplier = b.child(root, "supplier");
        b.child_with_text(supplier, "sname", &format!("Supplier-{s}"));
        b.child_with_text(supplier, "region", REGIONS[s % REGIONS.len()]);
    }

    let mut counter = 0usize;
    for p in 0..config.products {
        let product = b.child(root, "product");
        b.child_with_text(product, "pid", &format!("P-{p}"));
        if config.max_assembly_depth > 0 {
            let assembly = b.child(product, "assembly");
            emit_assembly(
                config,
                &mut rng,
                &mut b,
                &mut counter,
                assembly,
                config.max_assembly_depth - 1,
            );
        }
    }
    b.finish()
}

/// Fills `assembly` with parts, recursing into sub-assemblies while the
/// depth budget lasts. The recursion depth is bounded by
/// `max_assembly_depth`, so the generator's own stack use is bounded too —
/// unbounded chains come from [`generate_deep_bom`], which is iterative.
fn emit_assembly(
    config: &BomConfig,
    rng: &mut StdRng,
    b: &mut XmlTreeBuilder,
    counter: &mut usize,
    assembly: NodeId,
    depth_left: usize,
) {
    for i in 0..config.parts_per_assembly.max(1) {
        *counter += 1;
        let part = b.child(assembly, "part");
        b.child_with_text(part, "pnum", &format!("N-{counter}"));
        let origin = if rng.gen_bool(config.domestic_fraction) {
            DOMESTIC
        } else {
            ORIGINS[*counter % ORIGINS.len()]
        };
        b.child_with_text(part, "origin", origin);
        b.child_with_text(part, "cost", &format!("{}", 10 + *counter % 90));
        let skewed_out = config.skew > 0.0 && i > 0 && rng.gen_bool(config.skew);
        if depth_left > 0 && !skewed_out && rng.gen_bool(config.recursion_probability) {
            let sub = b.child(part, "assembly");
            emit_assembly(config, rng, b, counter, sub, depth_left - 1);
        }
    }
}

/// Generates a pathological-depth bom document: one product whose single
/// part chain nests `depth` sub-assemblies. Built **iteratively**, so the
/// generator itself never overflows; every part on the chain is domestic
/// (so deep recursion and view visibility compose).
pub fn generate_deep_bom(depth: usize, seed: u64) -> XmlTree {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = XmlTreeBuilder::new();
    let root = b.root("catalog");
    let product = b.child(root, "product");
    b.child_with_text(product, "pid", "P-deep");
    let mut anchor = product;
    for level in 0..depth.max(1) {
        let assembly = b.child(anchor, "assembly");
        let part = b.child(assembly, "part");
        b.child_with_text(part, "pnum", &format!("N-{level}"));
        // An occasional non-domestic link makes the view chain shorter than
        // the document chain without changing its unbounded depth.
        let origin = if rng.gen_bool(0.95) { DOMESTIC } else { "overseas" };
        b.child_with_text(part, "origin", origin);
        b.child_with_text(part, "cost", &format!("{}", level % 97));
        anchor = part;
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use smoqe_xml::domains::bom_document_dtd;

    #[test]
    fn generated_documents_conform_to_the_dtd() {
        let doc = generate_bom(&BomConfig::default());
        bom_document_dtd().validate(&doc).unwrap();
        doc.check_consistency().unwrap();
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_bom(&BomConfig::default());
        let b = generate_bom(&BomConfig::default());
        assert_eq!(smoqe_xml::to_xml_string(&a), smoqe_xml::to_xml_string(&b));
    }

    #[test]
    fn deep_generator_reaches_the_requested_depth() {
        let doc = generate_deep_bom(200, 7);
        // catalog/product + 200 × (assembly/part) + leaf text depth.
        assert!(doc.max_depth() >= 400);
        bom_document_dtd().validate(&doc).unwrap();
    }

    #[test]
    fn skew_concentrates_recursion_on_the_first_part() {
        let skewed = generate_bom(&BomConfig {
            products: 2,
            max_assembly_depth: 6,
            parts_per_assembly: 4,
            recursion_probability: 1.0,
            skew: 1.0,
            ..Default::default()
        });
        bom_document_dtd().validate(&skewed).unwrap();
        let uniform = generate_bom(&BomConfig {
            products: 2,
            max_assembly_depth: 6,
            parts_per_assembly: 4,
            recursion_probability: 1.0,
            skew: 0.0,
            ..Default::default()
        });
        assert!(
            skewed.len() < uniform.len(),
            "skew prunes sibling recursion: {} vs {}",
            skewed.len(),
            uniform.len()
        );
        assert_eq!(skewed.max_depth(), uniform.max_depth());
    }
}
