//! Generic DTD-driven random document generation.
//!
//! Given any DTD in the paper's normal form, this module generates random
//! conforming documents: starred children get a random repetition count,
//! choice productions pick a random alternative, text elements get short
//! random strings drawn from a small vocabulary (so that equality filters
//! have non-trivial selectivity). Recursion is bounded by a depth budget;
//! once exhausted, starred/recursive children are emitted zero times where
//! the DTD allows it.
//!
//! The property-based tests use this generator to produce arbitrary inputs
//! for the differential testing of the evaluators and of the rewriting
//! pipeline.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use smoqe_xml::{ContentModel, Dtd, NodeId, XmlTree, XmlTreeBuilder};

/// Configuration for the generic generator.
#[derive(Debug, Clone)]
pub struct DtdGenConfig {
    /// Maximum element depth of the generated tree.
    pub max_depth: usize,
    /// Maximum repetition of a starred child.
    pub max_star_repeat: usize,
    /// Vocabulary used for PCDATA content.
    pub text_vocabulary: Vec<String>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DtdGenConfig {
    fn default() -> Self {
        DtdGenConfig {
            max_depth: 8,
            max_star_repeat: 3,
            text_vocabulary: vec![
                "heart disease".to_owned(),
                "lung disease".to_owned(),
                "alpha".to_owned(),
                "beta".to_owned(),
                "gamma".to_owned(),
            ],
            seed: 7,
        }
    }
}

/// Generates a random document conforming to `dtd`.
///
/// Returns `None` when the depth budget makes it impossible to emit a
/// conforming document (e.g. a mandatory recursive child at depth 0) — the
/// caller (typically a property test) simply retries with another seed or a
/// larger budget.
pub fn generate_from_dtd(dtd: &Dtd, config: &DtdGenConfig) -> Option<XmlTree> {
    dtd.check_well_formed().ok()?;
    let min_depth = minimum_depths(dtd);
    if min_depth[&dtd.root().to_owned()] > config.max_depth {
        return None;
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut b = XmlTreeBuilder::new();
    let root = b.root(dtd.root());
    let ok = fill(
        dtd,
        config,
        &min_depth,
        &mut rng,
        &mut b,
        root,
        dtd.root(),
        config.max_depth,
    );
    if ok {
        let tree = b.finish();
        dtd.validate(&tree).ok()?;
        Some(tree)
    } else {
        None
    }
}

/// The minimum tree depth needed to emit a conforming element of each type:
/// `1` for text/empty types, `1 + max` over mandatory sequence children,
/// `1 + min` over choice alternatives. Starred children contribute nothing
/// (they may be repeated zero times). Computed as a decreasing fix-point so
/// recursive types converge to their cheapest unfolding.
fn minimum_depths(dtd: &Dtd) -> std::collections::BTreeMap<String, usize> {
    let types: Vec<String> = dtd.element_types().iter().map(|s| s.to_string()).collect();
    let unknown = usize::MAX / 2;
    let mut depth: std::collections::BTreeMap<String, usize> =
        types.iter().map(|t| (t.clone(), unknown)).collect();
    loop {
        let mut changed = false;
        for ty in &types {
            let model = dtd.production(ty).expect("well-formed DTD");
            let candidate = match model {
                ContentModel::Text | ContentModel::Empty => 1,
                ContentModel::Sequence(children) => {
                    1 + children
                        .iter()
                        .filter(|c| !c.starred)
                        .map(|c| depth[&c.ty])
                        .max()
                        .unwrap_or(0)
                }
                ContentModel::Choice(options) => {
                    1 + options.iter().map(|o| depth[o]).min().unwrap_or(0)
                }
            };
            let candidate = candidate.min(unknown);
            if candidate < depth[ty] {
                depth.insert(ty.clone(), candidate);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    depth
}

/// Recursively fills `node` (of type `ty`) with conforming content.
/// Returns `false` when the depth budget cannot accommodate mandatory
/// children.
#[allow(clippy::too_many_arguments)]
fn fill(
    dtd: &Dtd,
    config: &DtdGenConfig,
    min_depth: &std::collections::BTreeMap<String, usize>,
    rng: &mut StdRng,
    b: &mut XmlTreeBuilder,
    node: NodeId,
    ty: &str,
    depth_left: usize,
) -> bool {
    let model = dtd.production(ty).cloned().expect("well-formed DTD");
    match model {
        ContentModel::Empty => true,
        ContentModel::Text => {
            let word = &config.text_vocabulary[rng.gen_range(0..config.text_vocabulary.len())];
            b.set_text(node, word);
            true
        }
        ContentModel::Sequence(children) => {
            for child in children {
                let fits = min_depth[&child.ty] < depth_left;
                let repeats = if child.starred {
                    if fits {
                        rng.gen_range(0..=config.max_star_repeat)
                    } else {
                        0
                    }
                } else {
                    if !fits {
                        return false;
                    }
                    1
                };
                for _ in 0..repeats {
                    let c = b.child(node, &child.ty);
                    if !fill(dtd, config, min_depth, rng, b, c, &child.ty, depth_left - 1) {
                        return false;
                    }
                }
            }
            true
        }
        ContentModel::Choice(options) => {
            if depth_left == 0 {
                return false;
            }
            // Only pick alternatives that still fit in the depth budget.
            let viable: Vec<&String> = options
                .iter()
                .filter(|o| min_depth[o.as_str()] < depth_left)
                .collect();
            if viable.is_empty() {
                return false;
            }
            let ty = viable[rng.gen_range(0..viable.len())];
            let c = b.child(node, ty);
            fill(dtd, config, min_depth, rng, b, c, ty, depth_left - 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smoqe_xml::hospital::{hospital_document_dtd, hospital_view_dtd};

    #[test]
    fn generates_conforming_hospital_documents() {
        let dtd = hospital_document_dtd();
        let mut produced = 0;
        for seed in 0..20 {
            let config = DtdGenConfig {
                seed,
                max_depth: 10,
                ..Default::default()
            };
            if let Some(tree) = generate_from_dtd(&dtd, &config) {
                dtd.validate(&tree).unwrap();
                produced += 1;
            }
        }
        assert!(produced > 5, "generator should usually succeed ({produced}/20)");
    }

    #[test]
    fn generates_conforming_view_documents() {
        let dtd = hospital_view_dtd();
        let config = DtdGenConfig {
            seed: 3,
            ..Default::default()
        };
        let tree = generate_from_dtd(&dtd, &config).expect("view DTD is easy to satisfy");
        dtd.validate(&tree).unwrap();
    }

    #[test]
    fn depth_budget_is_respected() {
        let dtd = hospital_document_dtd();
        for seed in 0..10 {
            let config = DtdGenConfig {
                seed,
                max_depth: 9,
                ..Default::default()
            };
            if let Some(tree) = generate_from_dtd(&dtd, &config) {
                assert!(tree.max_depth() <= 9 + 1);
            }
        }
    }

    #[test]
    fn same_seed_same_document() {
        let dtd = hospital_view_dtd();
        let config = DtdGenConfig::default();
        let a = generate_from_dtd(&dtd, &config);
        let b = generate_from_dtd(&dtd, &config);
        match (a, b) {
            (Some(a), Some(b)) => assert_eq!(smoqe_xml::to_xml_string(&a), smoqe_xml::to_xml_string(&b)),
            (None, None) => {}
            _ => panic!("determinism violated"),
        }
    }
}
