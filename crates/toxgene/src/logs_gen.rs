//! Generator for documents conforming to the log-archive DTD
//! (`smoqe_xml::domains::logs_document_dtd`) — the wide, flat,
//! label-exploded domain.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use smoqe_xml::domains::{ERROR_LEVEL, LOG_KEYS};
use smoqe_xml::{XmlTree, XmlTreeBuilder};

/// Configuration of the logs document generator.
#[derive(Debug, Clone)]
pub struct LogsConfig {
    /// Number of shards (top-level fan-out, the sharding axis).
    pub shards: usize,
    /// Entries per shard (the breadth axis — documents are wide, not deep).
    pub entries_per_shard: usize,
    /// Fraction of entries at `error` level — the selectivity knob of the
    /// logs view's conditional rule. `0.0` produces an empty view.
    pub error_fraction: f64,
    /// Context blocks per entry.
    pub ctx_per_entry: usize,
    /// Context keys emitted per `ctx` block, drawn from the exploded
    /// vocabulary (including the alias labels `patient`, `part`,
    /// `diagnosis`, `type`). Large values are the label-alias explosion.
    pub keys_per_ctx: usize,
    /// RNG seed; the same configuration always generates the same document.
    pub seed: u64,
}

impl Default for LogsConfig {
    fn default() -> Self {
        LogsConfig {
            shards: 3,
            entries_per_shard: 20,
            error_fraction: 0.3,
            ctx_per_entry: 1,
            keys_per_ctx: 3,
            seed: 0x10c5_feed,
        }
    }
}

const LEVELS: &[&str] = &["info", "warn", "debug", "trace"];
const SERVICES: &[&str] = &["auth", "billing", "ingest", "search"];
const MESSAGES: &[&str] = &[
    "request completed",
    "connection reset",
    "cache miss",
    "retry scheduled",
    "heart disease", // alias *text* colliding with the hospital selector
];

/// Generates a logs document according to `config`.
pub fn generate_logs(config: &LogsConfig) -> XmlTree {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut b = XmlTreeBuilder::new();
    let root = b.root("logbook");
    let mut counter = 0usize;
    for s in 0..config.shards.max(1) {
        let shard = b.child(root, "shard");
        b.child_with_text(shard, "host", &format!("node-{s}"));
        for _ in 0..config.entries_per_shard {
            counter += 1;
            let entry = b.child(shard, "entry");
            b.child_with_text(entry, "ts", &format!("2026-08-{:02}T12:{:02}", counter % 28 + 1, counter % 60));
            let level = if rng.gen_bool(config.error_fraction) {
                ERROR_LEVEL
            } else {
                LEVELS[counter % LEVELS.len()]
            };
            b.child_with_text(entry, "level", level);
            b.child_with_text(entry, "svc", SERVICES[counter % SERVICES.len()]);
            b.child_with_text(entry, "msg", MESSAGES[counter % MESSAGES.len()]);
            for _ in 0..config.ctx_per_entry {
                let ctx = b.child(entry, "ctx");
                // The content model is a sequence, so keys must appear in
                // vocabulary order: draw a multiset of key indices, sort it.
                let mut picks: Vec<usize> = (0..config.keys_per_ctx)
                    .map(|_| rng.gen_range(0..LOG_KEYS.len()))
                    .collect();
                picks.sort_unstable();
                for key_index in picks {
                    counter += 1;
                    b.child_with_text(ctx, LOG_KEYS[key_index], &format!("v{}", counter % 11));
                }
            }
        }
    }
    b.finish()
}

/// The label-alias explosion: every entry carries a `ctx` block holding
/// *every* key of the exploded vocabulary — including the alias labels —
/// so `//patient`, `//diagnosis` and friends face a forest of text leaves
/// whose names collide with other domains' structural elements.
pub fn generate_alias_explosion(entries: usize, seed: u64) -> XmlTree {
    generate_logs(&LogsConfig {
        shards: 1,
        entries_per_shard: entries.max(1),
        error_fraction: 0.5,
        ctx_per_entry: 2,
        keys_per_ctx: LOG_KEYS.len(),
        seed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use smoqe_xml::domains::logs_document_dtd;

    #[test]
    fn generated_documents_conform_to_the_dtd() {
        let doc = generate_logs(&LogsConfig::default());
        logs_document_dtd().validate(&doc).unwrap();
        doc.check_consistency().unwrap();
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_logs(&LogsConfig::default());
        let b = generate_logs(&LogsConfig::default());
        assert_eq!(smoqe_xml::to_xml_string(&a), smoqe_xml::to_xml_string(&b));
    }

    #[test]
    fn documents_are_wide_and_flat() {
        let doc = generate_logs(&LogsConfig {
            shards: 2,
            entries_per_shard: 100,
            ..Default::default()
        });
        assert!(doc.len() > 1000, "wide: {} nodes", doc.len());
        assert!(doc.max_depth() <= 5, "flat: depth {}", doc.max_depth());
    }

    #[test]
    fn alias_explosion_emits_alias_labels() {
        use smoqe_xpath::{evaluate, parse_path};
        let doc = generate_alias_explosion(10, 3);
        logs_document_dtd().validate(&doc).unwrap();
        for alias in ["patient", "part", "diagnosis", "type"] {
            let q = parse_path(&format!("//{alias}")).unwrap();
            assert!(
                !evaluate(&doc, doc.root(), &q).is_empty(),
                "alias `{alias}` appears"
            );
        }
    }

    #[test]
    fn zero_error_fraction_keeps_the_view_empty() {
        use smoqe_xpath::{evaluate, parse_path};
        let doc = generate_logs(&LogsConfig {
            error_fraction: 0.0,
            ..Default::default()
        });
        let q = parse_path(&format!("//level[text()='{ERROR_LEVEL}']")).unwrap();
        assert!(evaluate(&doc, doc.root(), &q).is_empty());
    }
}
