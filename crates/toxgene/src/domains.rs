//! The **domain registry**: every (document DTD, view definition, query
//! corpus, generator) tuple the differential suites and the fuzz campaign
//! iterate over.
//!
//! Before this registry the corpus-wide suites hardcoded the paper's
//! hospital pair; now they call [`all_domains`] and run the same
//! differential logic per domain. Each [`Domain`] bundles:
//!
//! * the [`ViewDefinition`] (which carries the document DTD),
//! * a *view* query corpus (posed on the view, answered through rewriting),
//! * a *document* query corpus (posed directly on the document),
//! * a deterministic generator covering the supported [`DocShape`]s.
//!
//! The hospital view-query corpus is the canonical copy here; the
//! `integration_tests` crate re-exports it and `smoqe_xpath`'s parser unit
//! tests pin a mirror of it (see `whole_view_query_corpus_parses_and_round_trips`).

use smoqe_views::{bom_view, hospital_view, logs_view, social_view, ViewDefinition};
use smoqe_xml::{Dtd, XmlTree};

use crate::bom_gen::{generate_bom, generate_deep_bom, BomConfig};
use crate::hospital_gen::{
    generate_deep_hospital, generate_hospital, generate_skewed_hospital, HospitalConfig,
};
use crate::logs_gen::{generate_alias_explosion, generate_logs, LogsConfig};
use crate::social_gen::{generate_deep_social, generate_social, SocialConfig};

/// The document shapes a domain generator can produce. Every shape is
/// deterministic in `(shape, scale, seed)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DocShape {
    /// The domain's ordinary mixed-content document.
    Standard,
    /// Pathological depth: a single chain driven through the DTD recursion
    /// (depth grows with `scale`). Not supported by flat domains.
    Deep,
    /// One dominant top-level subtree — skew composed with whatever
    /// recursion the domain has.
    Skewed,
    /// Label-dense documents: every element type of the DTD appears,
    /// including alias labels where the domain has them.
    AliasExplosion,
    /// A document whose security view materializes to just the view root
    /// ("no answers" everywhere for view queries below the root).
    EmptyView,
}

impl DocShape {
    /// All shapes, in a stable order.
    pub const ALL: [DocShape; 5] = [
        DocShape::Standard,
        DocShape::Deep,
        DocShape::Skewed,
        DocShape::AliasExplosion,
        DocShape::EmptyView,
    ];
}

/// One registered fuzz/differential domain.
pub struct Domain {
    /// Short stable name (`hospital`, `bom`, `logs`, `social`).
    pub name: &'static str,
    /// The domain's security view; its `document_dtd()` is the document
    /// schema all generated shapes conform to.
    pub view: ViewDefinition,
    /// Queries posed on the *view* (answered through rewriting).
    pub view_queries: &'static [&'static str],
    /// Queries posed directly on the *document*.
    pub document_queries: &'static [&'static str],
    /// The shapes `generate` supports for this domain.
    pub shapes: &'static [DocShape],
    generate: fn(DocShape, usize, u64) -> XmlTree,
}

impl Domain {
    /// The domain's document DTD.
    pub fn document_dtd(&self) -> &Dtd {
        self.view.document_dtd()
    }

    /// Generates a document of the given shape. `scale` multiplies the
    /// domain's base size (and, for [`DocShape::Deep`], its chain depth);
    /// the result is fully determined by `(shape, scale, seed)`.
    ///
    /// Unsupported shapes fall back to [`DocShape::Standard`] rather than
    /// panic, so shape-agnostic sweeps stay total.
    pub fn generate(&self, shape: DocShape, scale: usize, seed: u64) -> XmlTree {
        let shape = if self.shapes.contains(&shape) {
            shape
        } else {
            DocShape::Standard
        };
        (self.generate)(shape, scale.max(1), seed)
    }

    /// The deterministic "standard document" of the domain — the fixture
    /// the differential suites share (the role
    /// `standard_hospital_document()` played for the hospital pair).
    pub fn standard_document(&self) -> XmlTree {
        self.generate(DocShape::Standard, 1, STANDARD_SEED)
    }
}

/// Seed of the per-domain standard documents.
pub const STANDARD_SEED: u64 = 42;

/// The canonical σ₀ *view* query corpus (mirrored by `smoqe_xpath`'s parser
/// unit tests — update both together; `integration_tests` carries the
/// checksum drift-guard).
pub const HOSPITAL_VIEW_QUERIES: &[&str] = &[
    "patient",
    "patient/record",
    "patient/record/diagnosis",
    "patient/parent/patient",
    "patient/parent/patient/record/diagnosis",
    "(patient/parent)*/patient",
    "(patient/parent)*/patient[record]",
    "patient[*//record/diagnosis/text()='heart disease']",
    "patient[record/diagnosis/text()='heart disease' and parent]",
    "patient[not(parent)]",
    "patient[not(record/diagnosis/text()='heart disease')]",
    "patient/record/empty",
    "patient/(record | parent/patient/record)",
    "//diagnosis",
    "//record[diagnosis]",
    "patient//patient[record/empty]",
    "(patient/parent)*/patient[(parent/patient)*/record/diagnosis[text()='heart disease']]",
    "patient[parent/patient[not(record)]/parent/patient[record]]",
    "doctor",
    "patient/pname",
];

/// The canonical hospital *document* query corpus.
pub const HOSPITAL_DOCUMENT_QUERIES: &[&str] = &[
    "department/patient",
    "department/patient/pname",
    "department/patient[visit/treatment/medication/diagnosis/text()='heart disease']",
    "department/patient[visit/treatment/test]/pname",
    "department/patient[visit/treatment/medication/diagnosis/text()='heart disease' \
     and not(visit/treatment/test)]",
    "//diagnosis",
    "//zip",
    "department/doctor[specialty/text()='cardiology']/dname",
    "department/patient/(parent/patient)*/visit/treatment/medication/diagnosis",
    "(department/patient/parent/patient)*",
    "department/patient[(parent/patient)*/visit/treatment/medication/diagnosis/text()='heart disease']",
];

/// Queries on the bom *view* (`catalog → product → part → part …`).
pub const BOM_VIEW_QUERIES: &[&str] = &[
    "product",
    "product/pid",
    "product/part",
    "product/part/part",
    "product/part/(part)*/pnum",
    "//pnum",
    "//part[origin]",
    "product[part/part]",
    "product/part[not(part)]",
    "product[not(part)]",
    "product/(pid | part/pnum)",
    "product/part[(part)*/origin/text()='domestic']",
];

/// Queries on the bom *document* (recursive `part → assembly → part`).
pub const BOM_DOCUMENT_QUERIES: &[&str] = &[
    "product/pid",
    "//part",
    "//part[origin/text()='domestic']",
    "product/assembly/part/(assembly/part)*",
    "//part[not(assembly)]",
    "supplier/region",
    "//assembly[part/origin/text()='domestic']/part/pnum",
    "product[assembly/part[(assembly/part)*/origin/text()='domestic']]",
];

/// Queries on the logs *view* (error entries promoted to the root; the
/// alias labels are reachable through `ctx`).
pub const LOGS_VIEW_QUERIES: &[&str] = &[
    "entry",
    "entry/msg",
    "entry/ctx/patient",
    "//diagnosis",
    "entry[ctx/k00]",
    "entry[svc/text()='auth']/msg",
    "entry[not(ctx)]",
    "//patient | //part",
    "entry/ctx/(k01 | k02 | type)",
    "entry[msg/text()='heart disease']",
];

/// Queries on the logs *document* (wide, flat, alias-labelled).
pub const LOGS_DOCUMENT_QUERIES: &[&str] = &[
    "shard/entry/level",
    "//entry[level/text()='error']",
    "shard[host]/entry[svc/text()='billing']/msg",
    "//patient",
    "//diagnosis",
    "shard/entry[not(ctx)]",
    "//ctx[patient]",
    "shard/entry/msg",
];

/// Queries on the social *view* (recursive `member → member`, posts pulled
/// through the Kleene-starred annotation).
pub const SOCIAL_VIEW_QUERIES: &[&str] = &[
    "member",
    "member/handle",
    "member/member",
    "member/(member)*/post/content",
    "//post",
    "member[post]",
    "member[not(member)]",
    "member[member/post]",
    "//member[handle]/post",
    "member/(handle | post/content)",
];

/// Queries on the social *document* (recursive `member → friend → member`).
pub const SOCIAL_DOCUMENT_QUERIES: &[&str] = &[
    "member/handle",
    "//member[banned]",
    "member/(friend/member)*/post",
    "//post[tag/text()='private']/content",
    "member[not(banned)]/friend/member",
    "//friend/member[not(friend)]",
    "member[(friend/member)*/post[tag/text()='music']]",
];

fn gen_hospital(shape: DocShape, scale: usize, seed: u64) -> XmlTree {
    let base = HospitalConfig {
        patients: 60 * scale,
        departments: 3,
        heart_disease_fraction: 0.35,
        max_ancestor_depth: 2,
        sibling_probability: 0.4,
        visits_per_patient: 2,
        test_visit_fraction: 0.3,
        seed,
    };
    match shape {
        DocShape::Standard => generate_hospital(&base),
        DocShape::Deep => generate_deep_hospital(200 * scale, seed),
        DocShape::Skewed => generate_skewed_hospital(&base, 0.85),
        DocShape::AliasExplosion => generate_hospital(&HospitalConfig {
            patients: 30 * scale,
            max_ancestor_depth: 3,
            sibling_probability: 0.8,
            test_visit_fraction: 0.5,
            ..base
        }),
        DocShape::EmptyView => generate_hospital(&HospitalConfig {
            patients: 20 * scale,
            heart_disease_fraction: 0.0,
            ..base
        }),
    }
}

fn gen_bom(shape: DocShape, scale: usize, seed: u64) -> XmlTree {
    let base = BomConfig {
        products: 6 * scale,
        suppliers: 3,
        max_assembly_depth: 4,
        parts_per_assembly: 3,
        domestic_fraction: 0.5,
        recursion_probability: 0.6,
        skew: 0.0,
        seed,
    };
    match shape {
        DocShape::Standard => generate_bom(&base),
        DocShape::Deep => generate_deep_bom(200 * scale, seed),
        DocShape::Skewed => generate_bom(&BomConfig {
            products: 2,
            max_assembly_depth: 6 + scale,
            parts_per_assembly: 4,
            recursion_probability: 1.0,
            skew: 0.9,
            ..base
        }),
        DocShape::AliasExplosion => generate_bom(&BomConfig {
            products: 4 * scale,
            parts_per_assembly: 5,
            recursion_probability: 0.8,
            ..base
        }),
        DocShape::EmptyView => generate_bom(&BomConfig {
            products: 0,
            suppliers: 4 * scale,
            ..base
        }),
    }
}

fn gen_logs(shape: DocShape, scale: usize, seed: u64) -> XmlTree {
    let base = LogsConfig {
        shards: 3,
        entries_per_shard: 25 * scale,
        error_fraction: 0.3,
        ctx_per_entry: 1,
        keys_per_ctx: 3,
        seed,
    };
    match shape {
        DocShape::Standard => generate_logs(&base),
        // Logs are flat by construction; Deep falls back via `Domain::generate`.
        DocShape::Deep => generate_logs(&base),
        DocShape::Skewed => generate_logs(&LogsConfig {
            shards: 1,
            entries_per_shard: 60 * scale,
            ..base
        }),
        DocShape::AliasExplosion => generate_alias_explosion(12 * scale, seed),
        DocShape::EmptyView => generate_logs(&LogsConfig {
            error_fraction: 0.0,
            entries_per_shard: 15 * scale,
            ..base
        }),
    }
}

fn gen_social(shape: DocShape, scale: usize, seed: u64) -> XmlTree {
    let base = SocialConfig {
        members: 5 * scale,
        friend_depth: 3,
        friends_per_member: 2,
        posts_per_member: 2,
        banned_fraction: 0.2,
        private_fraction: 0.3,
        seed,
    };
    match shape {
        DocShape::Standard => generate_social(&base),
        // The recursive *view* makes deep social chains quadratic to
        // materialize; keep the chain shorter than the other domains'.
        DocShape::Deep => generate_deep_social(40 * scale, seed),
        DocShape::Skewed => generate_social(&SocialConfig {
            members: 1,
            friend_depth: 5,
            friends_per_member: 3,
            ..base
        }),
        DocShape::AliasExplosion => generate_social(&SocialConfig {
            members: 4 * scale,
            posts_per_member: 4,
            banned_fraction: 0.4,
            private_fraction: 0.5,
            ..base
        }),
        DocShape::EmptyView => generate_social(&SocialConfig {
            members: 3 * scale,
            banned_fraction: 1.0,
            ..base
        }),
    }
}

/// All registered domains, hospital first (the paper's running example).
pub fn all_domains() -> Vec<Domain> {
    vec![
        Domain {
            name: "hospital",
            view: hospital_view(),
            view_queries: HOSPITAL_VIEW_QUERIES,
            document_queries: HOSPITAL_DOCUMENT_QUERIES,
            shapes: &[
                DocShape::Standard,
                DocShape::Deep,
                DocShape::Skewed,
                DocShape::AliasExplosion,
                DocShape::EmptyView,
            ],
            generate: gen_hospital,
        },
        Domain {
            name: "bom",
            view: bom_view(),
            view_queries: BOM_VIEW_QUERIES,
            document_queries: BOM_DOCUMENT_QUERIES,
            shapes: &[
                DocShape::Standard,
                DocShape::Deep,
                DocShape::Skewed,
                DocShape::AliasExplosion,
                DocShape::EmptyView,
            ],
            generate: gen_bom,
        },
        Domain {
            name: "logs",
            view: logs_view(),
            view_queries: LOGS_VIEW_QUERIES,
            document_queries: LOGS_DOCUMENT_QUERIES,
            shapes: &[
                DocShape::Standard,
                DocShape::Skewed,
                DocShape::AliasExplosion,
                DocShape::EmptyView,
            ],
            generate: gen_logs,
        },
        Domain {
            name: "social",
            view: social_view(),
            view_queries: SOCIAL_VIEW_QUERIES,
            document_queries: SOCIAL_DOCUMENT_QUERIES,
            shapes: &[
                DocShape::Standard,
                DocShape::Deep,
                DocShape::Skewed,
                DocShape::AliasExplosion,
                DocShape::EmptyView,
            ],
            generate: gen_social,
        },
    ]
}

/// Looks a domain up by name.
pub fn domain(name: &str) -> Option<Domain> {
    all_domains().into_iter().find(|d| d.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_shape_of_every_domain_conforms_to_its_dtd() {
        for domain in all_domains() {
            let dtd = domain.document_dtd().clone();
            for &shape in domain.shapes {
                let doc = domain.generate(shape, 1, 7);
                dtd.validate(&doc).unwrap_or_else(|e| {
                    panic!("{}/{:?} violates the DTD: {e}", domain.name, shape)
                });
                doc.check_consistency().unwrap();
                let again = domain.generate(shape, 1, 7);
                assert_eq!(
                    smoqe_xml::to_xml_string(&doc),
                    smoqe_xml::to_xml_string(&again),
                    "{}/{:?} is deterministic",
                    domain.name,
                    shape
                );
            }
        }
    }

    #[test]
    fn every_query_of_every_corpus_parses(){
        for domain in all_domains() {
            for q in domain.view_queries.iter().chain(domain.document_queries) {
                smoqe_xpath::parse_path(q)
                    .unwrap_or_else(|e| panic!("{}: `{q}` fails to parse: {e}", domain.name));
            }
        }
    }

    #[test]
    fn empty_view_shapes_materialize_to_the_bare_root() {
        for domain in all_domains() {
            if !domain.shapes.contains(&DocShape::EmptyView) {
                continue;
            }
            let doc = domain.generate(DocShape::EmptyView, 1, 3);
            let mv = smoqe_views::materialize(&domain.view, &doc)
                .unwrap_or_else(|e| panic!("{}: {e}", domain.name));
            assert_eq!(
                mv.tree.len(),
                1,
                "{}: empty-view shape exposes only the view root",
                domain.name
            );
        }
    }

    #[test]
    fn views_are_recursive_where_designed() {
        assert!(domain("hospital").unwrap().view.is_recursive());
        assert!(domain("bom").unwrap().view.is_recursive());
        assert!(!domain("logs").unwrap().view.is_recursive());
        assert!(domain("social").unwrap().view.is_recursive());
    }
}
