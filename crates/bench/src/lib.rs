//! Shared workloads for the SMOQE-RS benchmark harness.
//!
//! One Criterion bench target (or plain report binary) exists per table /
//! figure of the paper's Section 7; this library defines the documents and
//! query sets they share so that every bench measures exactly the same
//! workload. See EXPERIMENTS.md for the mapping and for paper-vs-measured
//! results.
//!
//! ## Scaling note
//!
//! The paper's documents range from 7 MB (~10,000 patients, ~450k nodes) to
//! 70 MB (~100,000 patients). To keep `cargo bench` runs in the minutes
//! rather than hours on a development machine, the default series here uses
//! smaller documents (the `SMOQE_BENCH_SCALE` environment variable scales
//! them up: `SMOQE_BENCH_SCALE=10` reproduces the paper's sizes). The claims
//! under test are *relative* — which system is faster, by what factor, and
//! how the curves scale — and those are preserved at the smaller scale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use smoqe_toxgene::{generate_hospital, HospitalConfig};
use smoqe_xml::XmlTree;

/// One document of the benchmark series.
pub struct BenchDocument {
    /// Human-readable label (approximate serialized size).
    pub label: String,
    /// Number of top-level patients.
    pub patients: usize,
    /// The document itself.
    pub tree: XmlTree,
}

/// The document series used by Figures 8 and 9 (increasing sizes).
///
/// The number of steps defaults to 4; the paper uses 10 steps of 7 MB each.
pub fn document_series(steps: usize) -> Vec<BenchDocument> {
    let scale: usize = std::env::var("SMOQE_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    (1..=steps)
        .map(|step| {
            let patients = 700 * step * scale;
            let tree = generate_hospital(&HospitalConfig {
                patients,
                departments: 6,
                heart_disease_fraction: 0.3,
                max_ancestor_depth: 2,
                sibling_probability: 0.3,
                visits_per_patient: 2,
                test_visit_fraction: 0.3,
                seed: 2007,
            });
            let label = format!(
                "{:.1}MB",
                tree.approximate_byte_size() as f64 / 1_000_000.0
            );
            BenchDocument {
                label,
                patients,
                tree,
            }
        })
        .collect()
}

/// A single mid-sized document for the pruning-statistics report.
pub fn medium_document() -> XmlTree {
    generate_hospital(&HospitalConfig {
        patients: 2_000,
        departments: 6,
        heart_disease_fraction: 0.3,
        max_ancestor_depth: 2,
        sibling_probability: 0.3,
        visits_per_patient: 2,
        test_visit_fraction: 0.3,
        seed: 2007,
    })
}

/// The XPath queries of Fig. 8: (a) a filter returning a large node set,
/// (b) filter conjunctions, (c) filter disjunctions.
pub fn fig8_queries() -> Vec<(&'static str, &'static str)> {
    vec![
        (
            "fig8a_large_result_filter",
            "department/patient[visit/treatment/medication/diagnosis/text()='heart disease']",
        ),
        (
            "fig8b_filter_conjunctions",
            "department/patient[visit/treatment/medication/diagnosis/text()='heart disease' \
             and visit/treatment/test and not(sibling)]/pname",
        ),
        (
            "fig8c_filter_disjunctions",
            "department/patient[visit/treatment/medication/diagnosis/text()='heart disease' \
             or visit/treatment/medication/diagnosis/text()='lung disease' \
             or visit/treatment/test]/pname",
        ),
    ]
}

/// The regular XPath queries of Fig. 9: (a) Kleene star outside a filter,
/// (b) a filter inside a Kleene star, (c) a Kleene star inside a filter.
pub fn fig9_queries() -> Vec<(&'static str, &'static str)> {
    vec![
        (
            "fig9a_star_outside_filter",
            "department/patient/(parent/patient)*/visit/treatment/medication/diagnosis",
        ),
        (
            "fig9b_filter_inside_star",
            "department/patient/(parent/patient[visit/treatment/medication])*/pname",
        ),
        (
            "fig9c_star_inside_filter",
            "department/patient[(parent/patient)*/visit/treatment/medication/diagnosis/text()='heart disease']/pname",
        ),
    ]
}

/// The six example queries whose pruning statistics Section 7 reports
/// (average 78.2% for HyPE, 88% for OptHyPE).
pub fn pruning_queries() -> Vec<&'static str> {
    fig8_queries()
        .into_iter()
        .chain(fig9_queries())
        .map(|(_, q)| q)
        .collect()
}

/// The multi-query workload of the batched-throughput benchmark: the six
/// Section-7 queries plus narrow point lookups and a negation, mimicking a
/// serving mix where broad and narrow queries arrive concurrently against
/// the same hospital document.
pub fn batch_workload_queries() -> Vec<&'static str> {
    let mut queries = pruning_queries();
    queries.extend([
        "//zip",
        "department/patient/pname",
        "department/doctor[specialty/text()='cardiology']/dname",
        "department/patient[not(visit/treatment/test)]/pname",
    ]);
    queries
}
