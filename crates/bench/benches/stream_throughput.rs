//! Streaming evaluation throughput (PR 3) — StreamHype over raw XML events
//! vs parse-then-HyPE over the materialized tree.
//!
//! Two parts:
//!
//! 1. A **constant-memory report** (printed first). For the mid-sized
//!    hospital document it *asserts* the PR's acceptance criteria — so the
//!    bench doubles as a smoke test in CI:
//!    * streaming evaluation performs **zero arena-node allocations**
//!      (checked via `smoqe_xml::node_allocations`),
//!    * the evaluator's working set is **O(depth)**: its peak live-frame
//!      count is bounded by the document's maximal nesting depth (13-ish),
//!      not by its node count (hundreds of thousands),
//!    * streamed answers equal the tree engine's on the re-parsed document.
//!
//!    It also reports events/second for the raw reader and for full
//!    evaluation, solo and batched.
//! 2. **Timing series** (Criterion): `parse_then_hype` (arena build + tree
//!    pass) vs `stream_hype` (one incremental pass), solo and with the
//!    10-query batch workload.
//!
//! Run with: `cargo bench --bench stream_throughput`
//! (`SMOQE_BENCH_JSON=/path/file.json` appends one JSON line per timing.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::{Duration, Instant};

use smoqe_automata::{compile_query, Mfa};
use smoqe_bench::{batch_workload_queries, medium_document};
use smoqe_hype::{evaluate, evaluate_stream, evaluate_stream_batch, BatchQuery};
use smoqe_xml::stream::EventSource;
use smoqe_xml::{node_allocations, parse_document, to_xml_string, XmlStreamReader};
use smoqe_xpath::parse_path;

/// The solo query the report and the solo timings use: broad enough to keep
/// most of the document live, so the comparison is about the substrate, not
/// about pruning luck.
const SOLO_QUERY: &str = "//diagnosis";

fn compile_workload() -> Vec<Mfa> {
    batch_workload_queries()
        .into_iter()
        .map(|q| compile_query(&parse_path(q).expect("workload query parses")))
        .collect()
}

/// Part 1: acceptance-criteria assertions plus the events/sec report.
fn constant_memory_report(xml: &str, solo: &Mfa, workload: &[Mfa]) {
    let tree = parse_document(xml).expect("workload document parses");
    println!(
        "# Streaming throughput on a {}-node ({:.1} MB) hospital document, depth {}",
        tree.len(),
        xml.len() as f64 / 1e6,
        tree.max_depth()
    );

    // Raw reader speed: events/sec with no evaluation attached.
    let start = Instant::now();
    let mut reader = XmlStreamReader::new(xml.as_bytes());
    let mut events = 0usize;
    while let Some(event) = reader.next_event().expect("document re-streams") {
        let _ = std::hint::black_box(&event);
        events += 1;
    }
    let reader_secs = start.elapsed().as_secs_f64();

    // Solo streamed evaluation: zero allocations, O(depth) frames, answers
    // equal to the tree engine's.
    let allocations_before = node_allocations();
    let start = Instant::now();
    let mut reader = XmlStreamReader::new(xml.as_bytes());
    let (streamed, stats) = evaluate_stream(&mut reader, solo).expect("streamed run succeeds");
    let solo_secs = start.elapsed().as_secs_f64();
    assert_eq!(
        node_allocations(),
        allocations_before,
        "streaming evaluation must never materialize an arena tree"
    );
    assert!(
        stats.peak_frames <= tree.max_depth(),
        "peak frames {} exceeded the document depth {} — memory is not O(depth)",
        stats.peak_frames,
        tree.max_depth()
    );
    let on_tree = evaluate(&tree, solo);
    assert_eq!(
        streamed.answers, on_tree.answers,
        "streamed answers must equal the tree engine's"
    );
    assert_eq!(streamed.stats, on_tree.stats, "streamed stats must equal the tree engine's");

    // Batched streamed evaluation: same assertions, N queries in one pass.
    let batch_queries: Vec<BatchQuery> = workload.iter().map(BatchQuery::new).collect();
    let allocations_before = node_allocations();
    let start = Instant::now();
    let mut reader = XmlStreamReader::new(xml.as_bytes());
    let batch = evaluate_stream_batch(&mut reader, &batch_queries).expect("batched run succeeds");
    let batch_secs = start.elapsed().as_secs_f64();
    assert_eq!(node_allocations(), allocations_before, "batched streaming allocated nodes");
    assert!(batch.stats.peak_frames <= tree.max_depth());

    println!(
        "events: {events}   reader only: {:>7.2} Mev/s   solo eval: {:>7.2} Mev/s   {}-query batch: {:>7.2} Mev/s",
        events as f64 / reader_secs / 1e6,
        events as f64 / solo_secs / 1e6,
        workload.len(),
        events as f64 / batch_secs / 1e6,
    );
    println!(
        "peak depth: {}   peak frames (solo): {}   peak frames (batch): {}   nodes: {}   => working set is O(depth)",
        stats.peak_depth,
        stats.peak_frames,
        batch.stats.peak_frames,
        tree.len()
    );
    println!();
}

/// Part 2: wall-clock timing of the two substrates.
fn timing(c: &mut Criterion, xml: &str, solo: &Mfa, workload: &[Mfa]) {
    let mut group = c.benchmark_group("stream_throughput");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    group.bench_with_input(BenchmarkId::new("parse_then_hype", "solo"), xml, |b, xml| {
        b.iter(|| {
            let tree = parse_document(xml).expect("parses");
            evaluate(&tree, solo).answers.len()
        })
    });
    group.bench_with_input(BenchmarkId::new("stream_hype", "solo"), xml, |b, xml| {
        b.iter(|| {
            let mut reader = XmlStreamReader::new(xml.as_bytes());
            evaluate_stream(&mut reader, solo).expect("streams").0.answers.len()
        })
    });

    let batch_label = format!("{}q", workload.len());
    group.bench_with_input(
        BenchmarkId::new("parse_then_hype_batched", &batch_label),
        xml,
        |b, xml| {
            let queries: Vec<BatchQuery> = workload.iter().map(BatchQuery::new).collect();
            b.iter(|| {
                let tree = parse_document(xml).expect("parses");
                smoqe_hype::evaluate_batch(&tree, &queries)
                    .results
                    .iter()
                    .map(|r| r.answers.len())
                    .sum::<usize>()
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("stream_hype_batched", &batch_label),
        xml,
        |b, xml| {
            let queries: Vec<BatchQuery> = workload.iter().map(BatchQuery::new).collect();
            b.iter(|| {
                let mut reader = XmlStreamReader::new(xml.as_bytes());
                evaluate_stream_batch(&mut reader, &queries)
                    .expect("streams")
                    .results
                    .iter()
                    .map(|r| r.answers.len())
                    .sum::<usize>()
            })
        },
    );
    group.finish();
}

fn stream_throughput(c: &mut Criterion) {
    let xml = to_xml_string(&medium_document());
    let solo = compile_query(&parse_path(SOLO_QUERY).expect("solo query parses"));
    let workload = compile_workload();
    constant_memory_report(&xml, &solo, &workload);
    timing(c, &xml, &solo, &workload);
}

criterion_group!(benches, stream_throughput);
criterion_main!(benches);
