//! Section-7 figure grid swept across every registered domain (PR 10) —
//! the fig9-style HyPE / OptHyPE / OptHyPE-C comparison, previously run
//! only on the hospital pair, replayed over the domain registry (`bom`,
//! `logs`, `social` alongside `hospital`).
//!
//! Two parts:
//!
//! 1. A **grid report** (printed first, one JSON line per cell with
//!    `SMOQE_BENCH_JSON` set): for every domain × document scale × query ×
//!    system, the evaluations-per-second over a short window, the node-visit
//!    count, and the answer count. The report doubles as a differential
//!    gate: the three systems must return identical answers in every cell.
//!
//! 2. **Timing series** (Criterion): each domain's representative view
//!    query at the largest grid scale, through the three systems —
//!    `domain_grid/<system>/<domain>`.
//!
//! Queries per domain: the first *document* query of the registry corpus
//! (compiled directly) and the first *view* query (through σ₀ rewriting),
//! so the grid exercises both halves of the pipeline in every domain.
//!
//! Run with: `cargo bench --bench domain_grid`
//! (`SMOQE_BENCH_JSON=/path/file.json` appends one JSON line per cell.)

use std::io::Write as _;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use smoqe::SmoqeEngine;
use smoqe_automata::{compile_query, Mfa};
use smoqe_hype::{evaluate, evaluate_with_index, ReachabilityIndex};
use smoqe_toxgene::domains::STANDARD_SEED;
use smoqe_toxgene::{all_domains, DocShape, Domain};
use smoqe_xml::XmlTree;
use smoqe_xpath::parse_path;

/// Document scales of the grid (multiples of each domain's base size).
const SCALES: &[usize] = &[1, 2, 4];

/// Measurement window of one grid cell.
const WINDOW: Duration = Duration::from_millis(120);

/// One compiled query of the grid, tagged with its origin.
struct GridQuery {
    /// `doc:<q>` or `view:<q>` — matches the differential suites' tags.
    tag: String,
    mfa: Mfa,
}

/// The two representative queries of a domain: its first document query
/// (compiled directly) and its first view query (through rewriting).
fn grid_queries(domain: &Domain) -> Vec<GridQuery> {
    let engine = SmoqeEngine::new(domain.view.clone()).expect("registered views check");
    let doc_query = domain.document_queries.first().expect("non-empty corpus");
    let view_query = domain.view_queries.first().expect("non-empty corpus");
    vec![
        GridQuery {
            tag: format!("doc:{doc_query}"),
            mfa: compile_query(&parse_path(doc_query).expect("registry queries parse")),
        },
        GridQuery {
            tag: format!("view:{view_query}"),
            mfa: engine
                .compile(view_query)
                .expect("registry view queries rewrite")
                .mfa()
                .clone(),
        },
    ]
}

/// Appends one custom JSON line next to the Criterion records.
fn emit_json(line: &str) {
    let Ok(path) = std::env::var("SMOQE_BENCH_JSON") else { return };
    if path.is_empty() {
        return;
    }
    if let Ok(mut file) = std::fs::OpenOptions::new().create(true).append(true).open(&path) {
        let _ = writeln!(file, "{line}");
    }
}

/// Evaluations-per-second of `f` over [`WINDOW`].
fn evals_per_sec(f: &mut dyn FnMut() -> usize) -> f64 {
    let start = Instant::now();
    let mut evals = 0u64;
    while start.elapsed() < WINDOW {
        f();
        evals += 1;
    }
    evals as f64 / start.elapsed().as_secs_f64()
}

/// Part 1: the full grid — throughput + visit counts per cell, with the
/// three systems' answers pinned equal.
fn grid_report(domains: &[Domain]) {
    println!(
        "# Domain figure grid — {} domains × {:?} scales × 2 queries × 3 systems",
        domains.len(),
        SCALES
    );
    for domain in domains {
        let dtd = domain.document_dtd().clone();
        let queries = grid_queries(domain);
        for &scale in SCALES {
            let doc = domain.generate(DocShape::Standard, scale, STANDARD_SEED);
            for q in &queries {
                let index = ReachabilityIndex::new(&q.mfa, &dtd, doc.labels());
                let cindex = ReachabilityIndex::new_compressed(&q.mfa, &dtd, doc.labels());

                let plain = evaluate(&doc, &q.mfa);
                let opt = evaluate_with_index(&doc, &q.mfa, &index);
                let optc = evaluate_with_index(&doc, &q.mfa, &cindex);
                assert_eq!(
                    plain.answers, opt.answers,
                    "{}/{} ×{scale}: OptHyPE diverges from HyPE",
                    domain.name, q.tag
                );
                assert_eq!(
                    opt.answers, optc.answers,
                    "{}/{} ×{scale}: OptHyPE-C diverges from OptHyPE",
                    domain.name, q.tag
                );
                assert_eq!(
                    opt.stats, optc.stats,
                    "{}/{} ×{scale}: the compressed index changes the visit profile",
                    domain.name, q.tag
                );

                let cells: [(&str, f64, u64); 3] = [
                    (
                        "HyPE",
                        evals_per_sec(&mut || evaluate(&doc, &q.mfa).answers.len()),
                        plain.stats.nodes_visited as u64,
                    ),
                    (
                        "OptHyPE",
                        evals_per_sec(&mut || {
                            evaluate_with_index(&doc, &q.mfa, &index).answers.len()
                        }),
                        opt.stats.nodes_visited as u64,
                    ),
                    (
                        "OptHyPE-C",
                        evals_per_sec(&mut || {
                            evaluate_with_index(&doc, &q.mfa, &cindex).answers.len()
                        }),
                        optc.stats.nodes_visited as u64,
                    ),
                ];
                for (system, eps, visits) in cells {
                    emit_json(&format!(
                        "{{\"id\": \"domain_grid/{}/{}/x{scale}/{system}\", \
                         \"nodes\": {}, \"answers\": {}, \"node_visits\": {visits}, \
                         \"evals_per_sec\": {eps:.1}}}",
                        domain.name,
                        q.tag,
                        doc.len(),
                        plain.answers.len()
                    ));
                    println!(
                        "{:>8} ×{scale} {:<9} {:>9.0} evals/s  {:>8} visits  {:>5} answers  [{}]",
                        domain.name,
                        system,
                        eps,
                        visits,
                        plain.answers.len(),
                        q.tag
                    );
                }
            }
        }
    }
    println!("differential gate: HyPE ≡ OptHyPE ≡ OptHyPE-C in every grid cell");
    println!();
}

/// Part 2: Criterion timing on each domain's view query at the largest
/// grid scale.
fn timing(c: &mut Criterion, domains: &[Domain]) {
    let scale = *SCALES.last().expect("non-empty scales");
    let mut group = c.benchmark_group("domain_grid");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    for domain in domains {
        let dtd = domain.document_dtd().clone();
        let queries = grid_queries(domain);
        let view = queries.into_iter().nth(1).expect("two grid queries");
        let doc: XmlTree = domain.generate(DocShape::Standard, scale, STANDARD_SEED);
        let index = ReachabilityIndex::new(&view.mfa, &dtd, doc.labels());
        let cindex = ReachabilityIndex::new_compressed(&view.mfa, &dtd, doc.labels());

        group.bench_with_input(BenchmarkId::new("HyPE", domain.name), &doc, |b, doc| {
            b.iter(|| evaluate(doc, &view.mfa).answers.len())
        });
        group.bench_with_input(BenchmarkId::new("OptHyPE", domain.name), &doc, |b, doc| {
            b.iter(|| evaluate_with_index(doc, &view.mfa, &index).answers.len())
        });
        group.bench_with_input(BenchmarkId::new("OptHyPE-C", domain.name), &doc, |b, doc| {
            b.iter(|| evaluate_with_index(doc, &view.mfa, &cindex).answers.len())
        });
    }
    group.finish();
}

fn domain_grid(c: &mut Criterion) {
    let domains = all_domains();
    grid_report(&domains);
    timing(c, &domains);
}

criterion_group!(benches, domain_grid);
criterion_main!(benches);
