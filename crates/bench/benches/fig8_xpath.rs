//! Figure 8 — XPath query evaluation times over documents of increasing
//! size: the JAXP-style two-pass baseline vs HyPE vs OptHyPE vs OptHyPE-C.
//!
//! Series: `fig8{a,b,c}/<system>/<document size>`.
//! Expected shape (paper): all four scale linearly in document size;
//! HyPE beats the baseline by ~3x; OptHyPE/OptHyPE-C by ~4x and are nearly
//! identical to each other.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use smoqe_automata::compile_query;
use smoqe_baseline::two_pass::evaluate_two_pass_mfa;
use smoqe_bench::{document_series, fig8_queries};
use smoqe_hype::{evaluate, evaluate_with_index, ReachabilityIndex};
use smoqe_xml::hospital::hospital_document_dtd;
use smoqe_xpath::parse_path;

fn fig8(c: &mut Criterion) {
    let documents = document_series(4);
    let dtd = hospital_document_dtd();

    for (figure, query_text) in fig8_queries() {
        let query = parse_path(query_text).expect("benchmark query parses");
        let mfa = compile_query(&query);
        let mut group = c.benchmark_group(figure);
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(500))
            .measurement_time(Duration::from_secs(2));

        for doc in &documents {
            let index = ReachabilityIndex::new(&mfa, &dtd, doc.tree.labels());
            let cindex = ReachabilityIndex::new_compressed(&mfa, &dtd, doc.tree.labels());

            group.bench_with_input(
                BenchmarkId::new("JAXP_two_pass", &doc.label),
                &doc.tree,
                |b, tree| b.iter(|| evaluate_two_pass_mfa(tree, &mfa).0.len()),
            );
            group.bench_with_input(
                BenchmarkId::new("HyPE", &doc.label),
                &doc.tree,
                |b, tree| b.iter(|| evaluate(tree, &mfa).answers.len()),
            );
            group.bench_with_input(
                BenchmarkId::new("OptHyPE", &doc.label),
                &doc.tree,
                |b, tree| b.iter(|| evaluate_with_index(tree, &mfa, &index).answers.len()),
            );
            group.bench_with_input(
                BenchmarkId::new("OptHyPE-C", &doc.label),
                &doc.tree,
                |b, tree| b.iter(|| evaluate_with_index(tree, &mfa, &cindex).answers.len()),
            );
        }
        group.finish();
    }
}

criterion_group!(benches, fig8);
criterion_main!(benches);
