//! Section 7, pruning statistics — "HyPE prunes, on average, 78.2% of the
//! element nodes, OptHyPE 88%, for our example queries."
//!
//! This target is a report rather than a timing benchmark (`harness = false`):
//! it prints, for every example query, the fraction of element nodes pruned
//! by HyPE and by OptHyPE/OptHyPE-C, the size of the candidate-answer DAG,
//! and the index sizes, then the averages the paper quotes.
//!
//! Run with: `cargo bench -p smoqe-bench --bench pruning_stats`

use smoqe_automata::compile_query;
use smoqe_bench::{medium_document, pruning_queries};
use smoqe_hype::{evaluate, evaluate_with_index, ReachabilityIndex};
use smoqe_xml::hospital::hospital_document_dtd;
use smoqe_xpath::parse_path;

fn main() {
    let doc = medium_document();
    let dtd = hospital_document_dtd();
    println!(
        "# Pruning statistics on a {}-node hospital document (≈{:.1} MB)",
        doc.len(),
        doc.approximate_byte_size() as f64 / 1_000_000.0
    );
    println!(
        "{:<110} {:>8} {:>8} {:>8} {:>10}",
        "query", "HyPE%", "Opt%", "OptC%", "cans size"
    );

    let mut hype_sum = 0.0;
    let mut opt_sum = 0.0;
    let mut optc_sum = 0.0;
    let mut count = 0.0;
    for query_text in pruning_queries() {
        let query = parse_path(query_text).unwrap();
        let mfa = compile_query(&query);
        let plain = evaluate(&doc, &mfa);
        let index = ReachabilityIndex::new(&mfa, &dtd, doc.labels());
        let opt = evaluate_with_index(&doc, &mfa, &index);
        let cindex = ReachabilityIndex::new_compressed(&mfa, &dtd, doc.labels());
        let optc = evaluate_with_index(&doc, &mfa, &cindex);
        assert_eq!(plain.answers, opt.answers);
        assert_eq!(plain.answers, optc.answers);

        println!(
            "{:<110} {:>7.1}% {:>7.1}% {:>7.1}% {:>10}",
            query_text,
            100.0 * plain.stats.pruned_fraction(),
            100.0 * opt.stats.pruned_fraction(),
            100.0 * optc.stats.pruned_fraction(),
            plain.stats.cans_vertices,
        );
        println!(
            "{:<110} {:>8} {:>8} {:>8} {:>10}",
            "  (index bytes: plain vs compressed)",
            "",
            index.memory_bytes(),
            cindex.memory_bytes(),
            ""
        );
        hype_sum += plain.stats.pruned_fraction();
        opt_sum += opt.stats.pruned_fraction();
        optc_sum += optc.stats.pruned_fraction();
        count += 1.0;
    }
    println!();
    println!(
        "AVERAGE pruning  HyPE {:>5.1}%   OptHyPE {:>5.1}%   OptHyPE-C {:>5.1}%   (paper: 78.2% / 88% / 88%)",
        100.0 * hype_sum / count,
        100.0 * opt_sum / count,
        100.0 * optc_sum / count
    );
}
