//! Skewed-document parallel throughput (PR 9) — shard re-splitting under
//! an adversarial top-level fan-out where one subtree holds ≥ 80% of the
//! document.
//!
//! Before re-splitting, the parallel evaluator's unit of work was one
//! top-level child: on this document every budget collapsed to (almost)
//! sequential wall-clock, because whichever worker drew the dominant
//! subtree ran ~5× longer than the rest of the pool combined. The split
//! planner now turns the dominant child into a *spine* whose children are
//! claimed off per-worker Chase–Lev deques, so the skew disappears into
//! the steal traffic.
//!
//! Two parts:
//!
//! 1. A **correctness + throughput report** (printed first), doubling as a
//!    smoke test in CI:
//!    * the document's dominant subtree really holds ≥ 80% of the nodes
//!      (pinning the adversarial shape against generator drift);
//!    * parallel answers **and statistics** equal the sequential engines'
//!      at thread budgets {1, 2, 4, 8};
//!    * `max_shard_fraction` (the skew diagnostic new in this PR) is
//!      reported per budget and must stay well below the dominant
//!      subtree's ~99% share once re-splitting kicks in;
//!    * on hardware with **≥ 4 cores** the report *asserts* a ≥ 1.4×
//!      node-throughput win at 4 threads — impossible without
//!      re-splitting, since the dominant subtree alone is > 80% of the
//!      work. On fewer cores the gate is reported as skipped with the
//!      core count recorded in the JSON (`"enforced": false`).
//!
//! 2. **Timing series** (Criterion): sequential vs parallel at each
//!    budget on the identical skewed document.
//!
//! Run with: `cargo bench --bench skewed_throughput`
//! (`SMOQE_BENCH_JSON=/path/file.json` appends one JSON line per series.)

use std::io::Write as _;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use smoqe_automata::{compile_query, CompiledMfa};
use smoqe_hype::{
    evaluate_batch_compiled, evaluate_batch_parallel, evaluate_compiled, evaluate_parallel,
    CompiledBatchQuery,
};
use smoqe_toxgene::{generate_skewed_hospital, HospitalConfig};
use smoqe_xml::XmlTree;
use smoqe_xpath::parse_path;

/// Thread budgets of the measured series.
const BUDGETS: &[usize] = &[1, 2, 4, 8];

/// The solo query of the report: broad enough to keep most of the document
/// live, so scheduling (not pruning) dominates the comparison.
const SOLO_QUERY: &str = "//diagnosis";

/// Batch workload: a small mixed set over the hospital alphabet.
const BATCH_QUERIES: &[&str] = &[
    "//diagnosis",
    "department/patient/pname",
    "//patient[visit/treatment/medication]",
    "department/patient[visit]/visit/date",
];

/// The adversarial document: department 0 absorbs 85% of the patients, so
/// one top-level subtree dwarfs the other three combined.
fn bench_document() -> XmlTree {
    generate_skewed_hospital(
        &HospitalConfig {
            patients: 2_000,
            departments: 4,
            heart_disease_fraction: 0.3,
            max_ancestor_depth: 2,
            sibling_probability: 0.3,
            visits_per_patient: 2,
            test_visit_fraction: 0.3,
            seed: 2009,
        },
        0.85,
    )
}

/// Appends one custom JSON line next to the Criterion records.
fn emit_json(line: &str) {
    let Ok(path) = std::env::var("SMOQE_BENCH_JSON") else { return };
    if path.is_empty() {
        return;
    }
    if let Ok(mut file) = std::fs::OpenOptions::new().create(true).append(true).open(&path) {
        let _ = writeln!(file, "{line}");
    }
}

/// Nodes-per-second of `f` over a `window`, where `f` returns the
/// sequential-equivalent node-visit count of one full pass.
fn node_throughput(window: Duration, f: &mut dyn FnMut() -> u64) -> f64 {
    let start = Instant::now();
    let mut nodes = 0u64;
    while start.elapsed() < window {
        nodes += f();
    }
    nodes as f64 / start.elapsed().as_secs_f64()
}

/// The measurement window of the first throughput pass.
const WINDOW: Duration = Duration::from_millis(700);

/// Part 1: shape pin, differential gates, skew diagnostics, and (hardware
/// permitting) the 4-thread speedup assertion.
fn correctness_and_throughput_report(tree: &XmlTree, workload: &[Arc<CompiledMfa>]) {
    let cores = thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    // Pin the adversarial shape: one top-level subtree ≥ 80% of the nodes.
    let shares: Vec<usize> = tree
        .children(tree.root())
        .iter()
        .map(|&c| tree.subtree_size(c))
        .collect();
    let dominant = *shares.iter().max().expect("root has children");
    assert!(
        dominant * 10 >= tree.len() * 8,
        "the dominant subtree must hold ≥80% of the document ({dominant}/{} nodes)",
        tree.len()
    );
    println!(
        "# Skewed parallel evaluation on a {}-node document — dominant top-level subtree \
         {dominant} nodes ({:.1}%), {} batch queries, {cores} core(s)",
        tree.len(),
        100.0 * dominant as f64 / tree.len() as f64,
        workload.len()
    );

    let queries: Vec<CompiledBatchQuery> = workload
        .iter()
        .map(|ir| CompiledBatchQuery::new(Arc::clone(ir)))
        .collect();
    let solo_ir = Arc::new(CompiledMfa::new(
        &compile_query(&parse_path(SOLO_QUERY).expect("solo query parses")),
    ));

    // Differential gate at every measured budget: re-splitting must change
    // nothing observable but wall-clock time (and the skew diagnostic,
    // which is excluded from `HypeStats` equality).
    let sequential = evaluate_batch_compiled(tree, &queries);
    let solo_sequential = evaluate_compiled(tree, &solo_ir);
    for &threads in BUDGETS {
        let parallel = evaluate_batch_parallel(tree, &queries, threads);
        assert_eq!(parallel.stats, sequential.stats, "aggregate stats @{threads}t");
        for (i, (p, s)) in parallel.results.iter().zip(&sequential.results).enumerate() {
            assert_eq!(p.answers, s.answers, "answers differ at query {i} @{threads}t");
            assert_eq!(p.stats, s.stats, "stats differ at query {i} @{threads}t");
        }
        let solo_parallel = evaluate_parallel(tree, &solo_ir, threads);
        assert_eq!(solo_parallel.answers, solo_sequential.answers, "solo @{threads}t");
        assert_eq!(solo_parallel.stats, solo_sequential.stats, "solo @{threads}t");

        // The skew diagnostic: with re-splitting no single task may cover
        // anything close to the dominant subtree's ~85% share.
        let frac = solo_parallel.stats.max_shard_fraction;
        assert!(
            frac > 0.0 && frac < 0.5,
            "re-splitting bounds the largest task well below the dominant \
             subtree's share (max_shard_fraction = {frac:.3} @{threads}t)"
        );
        emit_json(&format!(
            "{{\"id\": \"skewed_throughput/max_shard_fraction/{threads}t\", \
             \"max_shard_fraction\": {frac:.4}, \"cores\": {cores}}}"
        ));
        println!("max_shard_fraction @{threads}t: {frac:.3}");
    }
    println!("differential gate: parallel ≡ sequential (answers + stats) at {BUDGETS:?} threads");

    // Node-throughput series over the batched workload.
    let sequential_nps = node_throughput(WINDOW, &mut || {
        evaluate_batch_compiled(tree, &queries).stats.sequential_node_visits as u64
    });
    emit_json(&format!(
        "{{\"id\": \"skewed_throughput/nodes_per_sec/sequential\", \
         \"nodes_per_sec\": {sequential_nps:.0}, \"cores\": {cores}}}"
    ));
    println!("node throughput (batch): sequential {:.2} Mnodes/s", sequential_nps / 1e6);

    let mut speedup_at = Vec::new();
    for &threads in BUDGETS {
        let nps = node_throughput(WINDOW, &mut || {
            evaluate_batch_parallel(tree, &queries, threads)
                .stats
                .sequential_node_visits as u64
        });
        let speedup = nps / sequential_nps;
        speedup_at.push((threads, speedup));
        emit_json(&format!(
            "{{\"id\": \"skewed_throughput/nodes_per_sec/parallel_{threads}t\", \
             \"nodes_per_sec\": {nps:.0}, \"speedup\": {speedup:.3}, \"cores\": {cores}}}"
        ));
        println!(
            "node throughput (batch): parallel @{threads}t {:.2} Mnodes/s ({speedup:.2}x)",
            nps / 1e6
        );
    }

    // The 4-thread speedup gate, where the hardware can express one. A
    // non-split evaluator cannot pass it here: the dominant subtree alone
    // is > 80% of the work, capping any per-child scheduler at ~1.2x.
    let (_, mut speedup_4t) = *speedup_at
        .iter()
        .find(|&&(t, _)| t == 4)
        .expect("4 threads is a measured budget");
    let gate_enforced = cores >= 4;
    if gate_enforced && speedup_4t < 1.4 {
        // Shared CI runners can have a noisy neighbor land inside one
        // 700 ms window; re-measure both sides once over a longer window
        // and keep the better ratio before failing the build.
        let retry_window = Duration::from_millis(2_500);
        let sequential_retry = node_throughput(retry_window, &mut || {
            evaluate_batch_compiled(tree, &queries).stats.sequential_node_visits as u64
        });
        let parallel_retry = node_throughput(retry_window, &mut || {
            evaluate_batch_parallel(tree, &queries, 4)
                .stats
                .sequential_node_visits as u64
        });
        let retried = parallel_retry / sequential_retry;
        println!("speedup gate: first pass {speedup_4t:.2}x, retry pass {retried:.2}x");
        speedup_4t = speedup_4t.max(retried);
    }
    emit_json(&format!(
        "{{\"id\": \"skewed_throughput/speedup_gate_4t\", \"speedup\": {speedup_4t:.3}, \
         \"threshold\": 1.4, \"cores\": {cores}, \"enforced\": {gate_enforced}}}"
    ));
    if gate_enforced {
        assert!(
            speedup_4t >= 1.4,
            "4-thread node throughput on the skewed document must be ≥1.4x sequential \
             on ≥4 cores (measured {speedup_4t:.2}x on {cores} cores, best of two passes)"
        );
        println!("speedup gate: {speedup_4t:.2}x at 4 threads (≥1.4x required) — PASS");
    } else {
        // One core cannot express a wall-clock win; the equivalence gates
        // above already ran. CI hardware (≥4 cores) enforces the 1.4x.
        println!(
            "speedup gate: SKIPPED ({cores} core(s) available; measured {speedup_4t:.2}x). \
             Enforced on ≥4-core hardware."
        );
    }
    println!();
}

/// Part 2: wall-clock timing series on identical inputs.
fn timing(c: &mut Criterion, tree: &XmlTree, workload: &[Arc<CompiledMfa>]) {
    let queries: Vec<CompiledBatchQuery> = workload
        .iter()
        .map(|ir| CompiledBatchQuery::new(Arc::clone(ir)))
        .collect();
    let solo_ir = Arc::new(CompiledMfa::new(
        &compile_query(&parse_path(SOLO_QUERY).expect("solo query parses")),
    ));
    let batch_label = format!("{}q", workload.len());

    let mut group = c.benchmark_group("skewed_throughput");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    group.bench_with_input(
        BenchmarkId::new("sequential_batched", &batch_label),
        tree,
        |b, tree| {
            b.iter(|| {
                evaluate_batch_compiled(tree, &queries)
                    .results
                    .iter()
                    .map(|r| r.answers.len())
                    .sum::<usize>()
            })
        },
    );
    for &threads in BUDGETS {
        group.bench_with_input(
            BenchmarkId::new(format!("parallel_batched_{threads}t"), &batch_label),
            tree,
            |b, tree| {
                b.iter(|| {
                    evaluate_batch_parallel(tree, &queries, threads)
                        .results
                        .iter()
                        .map(|r| r.answers.len())
                        .sum::<usize>()
                })
            },
        );
    }

    group.bench_with_input(BenchmarkId::new("sequential", "solo"), tree, |b, tree| {
        b.iter(|| evaluate_compiled(tree, &solo_ir).answers.len())
    });
    for &threads in [1usize, 4].iter() {
        group.bench_with_input(
            BenchmarkId::new(format!("parallel_{threads}t"), "solo"),
            tree,
            |b, tree| b.iter(|| evaluate_parallel(tree, &solo_ir, threads).answers.len()),
        );
    }
    group.finish();
}

fn skewed_throughput(c: &mut Criterion) {
    let tree = bench_document();
    let workload: Vec<Arc<CompiledMfa>> = BATCH_QUERIES
        .iter()
        .map(|q| Arc::new(CompiledMfa::new(&compile_query(&parse_path(q).expect("parses")))))
        .collect();
    correctness_and_throughput_report(&tree, &workload);
    timing(c, &tree, &workload);
}

criterion_group!(benches, skewed_throughput);
criterion_main!(benches);
