//! Incremental re-evaluation throughput after subtree edits (PR 7) —
//! `smoqe_hype::incremental` against from-scratch evaluation of the edited
//! document.
//!
//! Two parts, mirroring the other throughput benches:
//!
//! 1. A **correctness + throughput report** (printed first), doubling as a
//!    smoke test in CI:
//!    * after **every** edit of a scripted sequence, the incremental
//!      evaluator's answers, per-query `HypeStats` and aggregate
//!      `BatchStats` equal a from-scratch `evaluate_batch_parallel_at` of
//!      the edited tree — this is always asserted, on any hardware;
//!    * edit throughput (single-subtree edits / second, each followed by a
//!      full batch answer) is measured for the incremental evaluator and
//!      for the from-scratch baseline, and appended to `SMOQE_BENCH_JSON`
//!      alongside the Criterion timings;
//!    * the report *asserts* a ≥ 3× incremental win. The edits dirty one
//!      department of many (well under 10% of the document's live nodes —
//!      the report asserts that precondition too), so the win is
//!      algorithmic — recompute one shard, splice the cached rest — and is
//!      enforced on any core count (both sides run on one thread).
//!
//! 2. **Timing series** (Criterion): one insert-or-delete edit plus a full
//!    batch answer, incremental vs from-scratch, at 1 and 2 threads.
//!
//! Run with: `cargo bench --bench edit_throughput`
//! (`SMOQE_BENCH_JSON=/path/file.json` appends one JSON line per series.)

use std::io::Write as _;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use smoqe_automata::{compile_query, CompiledMfa};
use smoqe_hype::incremental::{IncrementalEvaluator, IncrementalQuery};
use smoqe_hype::{evaluate_batch_parallel_at, CompiledBatchQuery};
use smoqe_toxgene::{generate_hospital, HospitalConfig};
use smoqe_xml::{parse_document, EditOp, NodeId, XmlTree};
use smoqe_xpath::parse_path;

/// The edit-throughput gate: incremental must beat from-scratch by this
/// factor on single-subtree edits.
const GATE: f64 = 3.0;

/// Queries held open across edits — a deep path, a label scan and a
/// filtered path, so both answer splicing and filter accumulators are
/// exercised on every edit.
const QUERIES: &[&str] = &[
    "department/patient/pname",
    "//diagnosis",
    "department/patient[not(visit/treatment/test)]",
];

/// The document: many departments, so one top-level subtree (the unit an
/// edit dirties) is a small fraction of the whole.
fn bench_document() -> XmlTree {
    generate_hospital(&HospitalConfig {
        patients: 1200,
        departments: 24,
        heart_disease_fraction: 0.3,
        max_ancestor_depth: 2,
        visits_per_patient: 2,
        seed: 7000,
        ..Default::default()
    })
}

/// The payload inserted (and then deleted) by each round-trip edit pair:
/// a small patient subtree using only labels the document already interns.
fn payload() -> XmlTree {
    parse_document(
        "<patient><pname>Bench</pname><visit><treatment><medication>\
         <diagnosis>flu</diagnosis></medication></treatment></visit></patient>",
    )
    .expect("payload parses")
}

fn compiled_queries() -> Vec<Arc<CompiledMfa>> {
    QUERIES
        .iter()
        .map(|q| Arc::new(CompiledMfa::new(&compile_query(&parse_path(q).expect("parses")))))
        .collect()
}

/// Appends one custom JSON line next to the Criterion records.
fn emit_json(line: &str) {
    let Ok(path) = std::env::var("SMOQE_BENCH_JSON") else { return };
    if path.is_empty() {
        return;
    }
    if let Ok(mut file) = std::fs::OpenOptions::new().create(true).append(true).open(&path) {
        let _ = writeln!(file, "{line}");
    }
}

/// Round-robin single-subtree edit source: odd steps insert the payload at
/// the front of the next department, even steps delete it again, so the
/// live document oscillates between two states and every op dirties
/// exactly one top-level subtree.
struct EditSource {
    departments: Vec<NodeId>,
    next: usize,
    pending_delete: Option<NodeId>,
}

impl EditSource {
    fn new(tree: &XmlTree) -> Self {
        let departments = tree.children(tree.root()).to_vec();
        assert!(departments.len() >= 8, "need many shards for a sub-10% edit");
        Self { departments, next: 0, pending_delete: None }
    }

    /// The next op. Call [`EditSource::applied`] with the edited tree after
    /// applying it so a matching delete can target the inserted node.
    fn next_op(&mut self) -> EditOp {
        match self.pending_delete.take() {
            Some(node) => EditOp::Delete { node },
            None => {
                let dept = self.departments[self.next % self.departments.len()];
                self.next += 1;
                EditOp::Insert { parent: dept, position: 0, subtree: payload() }
            }
        }
    }

    fn applied(&mut self, tree: &XmlTree, op: &EditOp) {
        if let EditOp::Insert { parent, .. } = op {
            self.pending_delete = Some(tree.children(*parent)[0]);
        }
    }
}

/// Edits-per-second of `f` over `window`, where `f` performs one edit plus
/// one full batch answer.
fn edit_throughput(window: Duration, f: &mut dyn FnMut()) -> f64 {
    let start = Instant::now();
    let mut edits = 0u64;
    while start.elapsed() < window {
        f();
        edits += 1;
    }
    edits as f64 / start.elapsed().as_secs_f64()
}

const WINDOW: Duration = Duration::from_millis(700);

fn incremental_eps(window: Duration, irs: &[Arc<CompiledMfa>]) -> f64 {
    let mut tree = bench_document();
    let queries = irs.iter().map(|ir| IncrementalQuery::new(Arc::clone(ir))).collect();
    let (mut eval, _) = IncrementalEvaluator::new(&tree, tree.root(), queries, 1);
    let mut source = EditSource::new(&tree);
    edit_throughput(window, &mut || {
        let op = source.next_op();
        eval.apply_edits(&mut tree, std::slice::from_ref(&op), 1).expect("edit applies");
        source.applied(&tree, &op);
    })
}

fn scratch_eps(window: Duration, irs: &[Arc<CompiledMfa>]) -> f64 {
    let mut tree = bench_document();
    let queries: Vec<CompiledBatchQuery> =
        irs.iter().map(|ir| CompiledBatchQuery::new(Arc::clone(ir))).collect();
    let mut source = EditSource::new(&tree);
    edit_throughput(window, &mut || {
        let op = source.next_op();
        tree.apply(&op).expect("edit applies");
        source.applied(&tree, &op);
        evaluate_batch_parallel_at(&tree, tree.root(), &queries, 1);
    })
}

/// Part 1: the bit-identity gate after every edit, the edited-fraction
/// precondition, the throughput series, and the ≥3× speedup assertion.
fn correctness_and_throughput_report(irs: &[Arc<CompiledMfa>]) {
    let cores = thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut tree = bench_document();
    let live = tree.live_len();
    let shard = tree.subtree_size(tree.children(tree.root())[0]);
    let edited_fraction = shard as f64 / live as f64;
    println!(
        "# Incremental edits over a {live}-node document, {} departments \
         (one shard ≈ {shard} nodes, {:.1}% of the document), {} queries, {cores} core(s)",
        tree.children(tree.root()).len(),
        edited_fraction * 100.0,
        irs.len()
    );
    assert!(
        edited_fraction <= 0.10,
        "the speedup gate is defined for edits dirtying ≤10% of the nodes \
         (one shard is {:.1}%)",
        edited_fraction * 100.0
    );

    // Bit-identity gate: after every edit of a 48-step scripted sequence,
    // incremental ≡ from-scratch — answers, per-query stats, batch stats.
    let queries: Vec<IncrementalQuery> =
        irs.iter().map(|ir| IncrementalQuery::new(Arc::clone(ir))).collect();
    let scratch: Vec<CompiledBatchQuery> =
        irs.iter().map(|ir| CompiledBatchQuery::new(Arc::clone(ir))).collect();
    let (mut eval, _) = IncrementalEvaluator::new(&tree, tree.root(), queries, 1);
    let mut source = EditSource::new(&tree);
    for step in 0..48 {
        let op = source.next_op();
        let got = eval.apply_edits(&mut tree, std::slice::from_ref(&op), 1).expect("edit applies");
        source.applied(&tree, &op);
        let want = evaluate_batch_parallel_at(&tree, tree.root(), &scratch, 1);
        assert_eq!(got.stats, want.stats, "aggregate stats diverged at step {step}");
        assert_eq!(got.results.len(), want.results.len());
        for (g, w) in got.results.iter().zip(&want.results) {
            assert_eq!(g.answers, w.answers, "answers diverged at step {step}");
            assert_eq!(g.stats, w.stats, "per-query stats diverged at step {step}");
        }
    }
    println!("differential gate: incremental ≡ from-scratch after every of 48 edits");

    // Throughput: edits/second with a full batch answer after each edit.
    let scratch_rate = scratch_eps(WINDOW, irs);
    let incremental_rate = incremental_eps(WINDOW, irs);
    let mut speedup = incremental_rate / scratch_rate;
    emit_json(&format!(
        "{{\"id\": \"edit_throughput/edits_per_sec/from_scratch_1t\", \
         \"edits_per_sec\": {scratch_rate:.1}, \"cores\": {cores}}}"
    ));
    emit_json(&format!(
        "{{\"id\": \"edit_throughput/edits_per_sec/incremental_1t\", \
         \"edits_per_sec\": {incremental_rate:.1}, \"speedup\": {speedup:.3}, \
         \"cores\": {cores}}}"
    ));
    println!(
        "edit throughput: from-scratch {scratch_rate:.0} edits/s, \
         incremental {incremental_rate:.0} edits/s ({speedup:.1}x)"
    );

    // The ≥3× gate — algorithmic, so enforced on any hardware; give shared
    // runners a second, longer window before failing.
    if speedup < GATE {
        let retry_window = Duration::from_millis(2_500);
        let retried = incremental_eps(retry_window, irs) / scratch_eps(retry_window, irs);
        println!("speedup gate: first pass {speedup:.2}x, retry pass {retried:.2}x");
        speedup = speedup.max(retried);
    }
    emit_json(&format!(
        "{{\"id\": \"edit_throughput/speedup_gate\", \"speedup\": {speedup:.3}, \
         \"threshold\": {GATE}, \"edited_fraction\": {edited_fraction:.4}, \
         \"cores\": {cores}, \"enforced\": true}}"
    ));
    assert!(
        speedup >= GATE,
        "incremental re-evaluation must be ≥{GATE}x from-scratch on single-subtree \
         edits ({:.1}% of nodes); measured {speedup:.2}x, best of two passes",
        edited_fraction * 100.0
    );
    println!("speedup gate: {speedup:.1}x (≥{GATE}x required) — PASS");
    println!();
}

/// Part 2: Criterion timing series — one edit + full batch answer per
/// iteration, incremental vs from-scratch, at 1 and 2 threads.
fn timing(c: &mut Criterion, irs: &[Arc<CompiledMfa>]) {
    let label = format!("{}n_x_{}q", bench_document().live_len(), irs.len());
    let mut group = c.benchmark_group("edit_throughput");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    for &threads in &[1usize, 2] {
        group.bench_function(BenchmarkId::new(format!("incremental_{threads}t"), &label), |b| {
            let mut tree = bench_document();
            let queries = irs.iter().map(|ir| IncrementalQuery::new(Arc::clone(ir))).collect();
            let (mut eval, _) = IncrementalEvaluator::new(&tree, tree.root(), queries, threads);
            let mut source = EditSource::new(&tree);
            b.iter(|| {
                let op = source.next_op();
                let result =
                    eval.apply_edits(&mut tree, std::slice::from_ref(&op), threads).unwrap();
                source.applied(&tree, &op);
                result.stats.nodes_visited
            })
        });
        group.bench_function(BenchmarkId::new(format!("from_scratch_{threads}t"), &label), |b| {
            let mut tree = bench_document();
            let queries: Vec<CompiledBatchQuery> =
                irs.iter().map(|ir| CompiledBatchQuery::new(Arc::clone(ir))).collect();
            let mut source = EditSource::new(&tree);
            b.iter(|| {
                let op = source.next_op();
                tree.apply(&op).unwrap();
                source.applied(&tree, &op);
                evaluate_batch_parallel_at(&tree, tree.root(), &queries, threads)
                    .stats
                    .nodes_visited
            })
        });
    }
    group.finish();
}

fn edit_throughput_bench(c: &mut Criterion) {
    let irs = compiled_queries();
    correctness_and_throughput_report(&irs);
    timing(c, &irs);
}

criterion_group!(benches, edit_throughput_bench);
criterion_main!(benches);
