//! `smoqed` serving-surface throughput (PR 8) — closed-loop load against
//! a real loopback TCP server, the scaling scoreboard for "heavy traffic
//! from millions of users".
//!
//! Two parts, mirroring the other throughput benches:
//!
//! 1. A **correctness + load report** (printed first), doubling as a smoke
//!    test in CI:
//!    * every wire answer **and its statistics** are bit-identical to a
//!      direct `QueryService` call over the same view, document and
//!      request order — asserted across two tenants, on any hardware;
//!    * the closed-loop load generator then drives the query mix
//!      (hot/cold solo queries, every-5th batched, every-9th an edit) at
//!      1, 4 and 8 concurrent clients; each series appends p50/p95/p99
//!      latency and QPS to `SMOQE_BENCH_JSON`, and **zero request errors**
//!      is always asserted;
//!    * the QPS scaling gate (8 clients ≥ 1.3× the 1-client run) only
//!      arms on ≥4-core hardware — on fewer cores the server and the
//!      clients share one CPU and concurrency cannot win.
//!
//! 2. **Timing series** (Criterion): one hot solo query round trip and one
//!    batched round trip over the live socket.
//!
//! Run with: `cargo bench --bench server_throughput`
//! (`SMOQE_BENCH_JSON=/path/file.json` appends one JSON line per series.)

use std::io::Write as _;
use std::thread;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use smoqe::{DocumentStore, EvaluationMode, QueryService, ServiceConfig};
use smoqe_toxgene::{generate_hospital, HospitalConfig};
use smoqe_views::hospital_view;
use smoqe_xml::{parse_document, snapshot, XmlTree};
use smoqed::protocol::WireResult;
use smoqed::{run_load, LoadConfig, Server, ServerConfig, SmoqedClient};

/// The scaling gate: 8 closed-loop clients must beat 1 by this factor.
/// Armed only on ≥4 cores (see module docs).
const QPS_GATE: f64 = 1.3;

/// Queries a production tenant would hammer (cache-resident).
const HOT_QUERIES: &[&str] = &[
    "patient",
    "patient/record/diagnosis",
    "(patient/parent)*/patient",
    "//diagnosis",
];

/// The long tail (distinct automata, colder caches).
const COLD_QUERIES: &[&str] = &[
    "patient/record",
    "patient/parent/patient",
    "patient[not(parent)]",
    "patient[record/diagnosis/text()='heart disease' and parent]",
    "patient/(record | parent/patient/record)",
    "//record[diagnosis]",
    "patient[not(record/diagnosis/text()='heart disease')]",
    "(patient/parent)*/patient[record]",
];

fn bench_document() -> XmlTree {
    generate_hospital(&HospitalConfig {
        patients: 150,
        departments: 6,
        heart_disease_fraction: 0.3,
        max_ancestor_depth: 2,
        sibling_probability: 0.4,
        visits_per_patient: 2,
        seed: 8000,
        ..Default::default()
    })
}

/// Small, pairwise-distinct private documents for the edit slice of the
/// mix — one per client, because the content-addressed store collapses
/// identical bytes to one id.
fn edit_targets(clients: usize) -> Vec<Vec<u8>> {
    (0..clients)
        .map(|i| {
            snapshot::save(&generate_hospital(&HospitalConfig {
                patients: 10,
                departments: 1,
                seed: 8001 + i as u64,
                ..Default::default()
            }))
        })
        .collect()
}

/// The subtree each edit inserts (labels the documents already intern).
fn edit_payload() -> XmlTree {
    parse_document(
        "<patient><pname>Load</pname><visit><treatment><medication>\
         <diagnosis>flu</diagnosis></medication></treatment></visit></patient>",
    )
    .expect("payload parses")
}

fn emit_json(line: &str) {
    let Ok(path) = std::env::var("SMOQE_BENCH_JSON") else { return };
    if path.is_empty() {
        return;
    }
    if let Ok(mut file) = std::fs::OpenOptions::new().create(true).append(true).open(&path) {
        let _ = writeln!(file, "{line}");
    }
}

fn spawn_server() -> Server {
    Server::spawn(
        "127.0.0.1:0",
        ServerConfig {
            workers: 0, // one per core
            queue_capacity: 256,
            service: ServiceConfig::default(),
        },
    )
    .expect("loopback server spawns")
}

/// Part 1a: wire ≡ direct, answers and stats, across two tenants.
fn correctness_report(server: &Server, doc_id: u64, doc_bytes: &[u8]) {
    let doc = bench_document();
    for tenant in ["ward-a", "ward-b"] {
        let mut client = SmoqedClient::connect(server.addr()).expect("connect");
        let reference =
            QueryService::with_config(hospital_view(), ServiceConfig::default()).unwrap();
        let store = DocumentStore::new();
        let ref_id = store.insert_snapshot(doc_bytes).unwrap();
        assert_eq!(ref_id.0, doc_id, "content addresses agree");

        for query in HOT_QUERIES.iter().chain(COLD_QUERIES) {
            let wire = client
                .query(tenant, doc_id, EvaluationMode::HyPE, query)
                .unwrap_or_else(|e| panic!("`{query}` on {tenant}: {e}"));
            let direct = reference
                .evaluate_corpus(&store, &[(ref_id, query)], EvaluationMode::HyPE)
                .unwrap()
                .pop()
                .unwrap();
            assert_eq!(
                wire,
                WireResult::from_result(&direct),
                "wire answer+stats diverged on `{query}` for {tenant}"
            );
        }
        let (wire_results, wire_stats) = client
            .batch_query(tenant, doc_id, EvaluationMode::HyPE, HOT_QUERIES)
            .expect("batch");
        let direct = reference
            .evaluate_batch(HOT_QUERIES, &doc, EvaluationMode::HyPE)
            .unwrap();
        for (w, d) in wire_results.iter().zip(&direct.results) {
            assert_eq!(w, &WireResult::from_result(d), "batch diverged for {tenant}");
        }
        assert_eq!(wire_stats.to_stats(), direct.stats, "batch stats for {tenant}");
    }
    println!("differential gate: wire answers+stats ≡ direct QueryService, 2 tenants");
}

fn load_config(clients: usize, tenant: &str, doc: u64) -> LoadConfig {
    LoadConfig {
        clients,
        requests_per_client: 160,
        tenant: tenant.to_owned(),
        doc,
        hot_queries: HOT_QUERIES.iter().map(|q| (*q).to_owned()).collect(),
        cold_queries: COLD_QUERIES.iter().map(|q| (*q).to_owned()).collect(),
        hot_percent: 80,
        batch_every: 5,
        edit_every: 9,
        edit_target_snapshots: edit_targets(clients),
        edit_payload_snapshot: snapshot::save(&edit_payload()),
        mode: EvaluationMode::HyPE,
        seed: 0x5eed_0008,
    }
}

fn server_throughput_bench(c: &mut Criterion) {
    let cores = thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let server = spawn_server();
    let doc = bench_document();
    let bytes = snapshot::save(&doc);
    println!(
        "# smoqed loopback server: {} live nodes, {} hot + {} cold queries, {cores} core(s)",
        doc.len(),
        HOT_QUERIES.len(),
        COLD_QUERIES.len()
    );

    // Tenants over the wire, like production would.
    let mut setup = SmoqedClient::connect(server.addr()).expect("connect");
    let mut doc_id = 0;
    for tenant in ["ward-a", "ward-b"] {
        setup.register_view(tenant, &hospital_view()).expect("register view");
        doc_id = setup.register_document(tenant, &bytes).expect("register doc");
    }

    correctness_report(&server, doc_id, &bytes);

    // Part 1b: the closed-loop load series.
    let mut qps_by_clients = Vec::new();
    for clients in [1usize, 4, 8] {
        // Both tenants share the server; the load alternates per series so
        // per-tenant caches stay warm within a series.
        let tenant = if clients % 2 == 0 { "ward-b" } else { "ward-a" };
        let report = run_load(server.addr(), &load_config(clients, tenant, doc_id));
        assert_eq!(
            report.errors, 0,
            "closed-loop load must complete without request errors"
        );
        println!(
            "load {clients:>2} client(s): {:>6.0} qps, p50 {:>5}us, p95 {:>5}us, \
             p99 {:>5}us, max {:>6}us, shed {}",
            report.qps, report.p50_us, report.p95_us, report.p99_us, report.max_us, report.shed
        );
        emit_json(&format!(
            "{{\"id\": \"server_throughput/loadgen/{clients}_clients\", \
             \"qps\": {:.1}, \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}, \
             \"max_us\": {}, \"requests\": {}, \"shed\": {}, \"cores\": {cores}}}",
            report.qps,
            report.p50_us,
            report.p95_us,
            report.p99_us,
            report.max_us,
            report.requests,
            report.shed
        ));
        qps_by_clients.push((clients, report.qps));
    }

    // The scaling gate, armed only where concurrency can physically win.
    let qps_1 = qps_by_clients[0].1;
    let qps_8 = qps_by_clients.last().unwrap().1;
    let scaling = qps_8 / qps_1;
    let enforced = cores >= 4;
    emit_json(&format!(
        "{{\"id\": \"server_throughput/qps_scaling_gate\", \"scaling\": {scaling:.3}, \
         \"threshold\": {QPS_GATE}, \"cores\": {cores}, \"enforced\": {enforced}}}"
    ));
    if enforced {
        assert!(
            scaling >= QPS_GATE,
            "8 closed-loop clients must sustain ≥{QPS_GATE}x the QPS of 1 \
             client on {cores} cores; measured {scaling:.2}x"
        );
        println!("qps scaling gate: {scaling:.2}x (≥{QPS_GATE}x required) — PASS");
    } else {
        println!(
            "qps scaling gate: {scaling:.2}x measured, enforcement skipped \
             ({cores} core(s) < 4)"
        );
    }
    println!();

    // Part 2: Criterion timing series over the live socket.
    let mut group = c.benchmark_group("server_throughput");
    group.sample_size(10);
    let mut client = SmoqedClient::connect(server.addr()).expect("connect");
    group.bench_function(BenchmarkId::new("solo_hot_query", "wire"), |b| {
        b.iter(|| {
            client
                .query("ward-a", doc_id, EvaluationMode::HyPE, HOT_QUERIES[0])
                .expect("query")
        })
    });
    group.bench_function(BenchmarkId::new("batched_hot_queries", "wire"), |b| {
        b.iter(|| {
            client
                .batch_query("ward-a", doc_id, EvaluationMode::HyPE, HOT_QUERIES)
                .expect("batch")
        })
    });
    group.finish();
}

criterion_group!(benches, server_throughput_bench);
criterion_main!(benches);
