//! Theorem 5.1 / Theorem 6.2 — rewriting cost and end-to-end query
//! answering cost on virtual views.
//!
//! Criterion series:
//!
//! * `rewrite_time/<query size>` — time for algorithm `rewrite` to produce
//!   the MFA over σ₀ as the query grows (expected: low-polynomial growth,
//!   milliseconds even for large queries);
//! * `view_answering/<method>` — end-to-end time to answer a fixed query on
//!   the virtual view: rewrite+HyPE (SMOQE) vs materialize-then-evaluate
//!   (expected: SMOQE wins and the gap grows with the hidden fraction of
//!   the document).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use smoqe_bench::medium_document;
use smoqe_rewrite::rewrite_to_mfa;
use smoqe_views::{hospital_view, materialize};
use smoqe_xpath::{evaluate, parse_path};

fn rewrite_time(c: &mut Criterion) {
    let view = hospital_view();
    let mut group = c.benchmark_group("rewrite_time");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for n in [1usize, 2, 4, 8, 16] {
        let query_text = format!(
            "patient{}[record/diagnosis/text()='heart disease']",
            "/parent/patient".repeat(n)
        );
        let query = parse_path(&query_text).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(query.size()), &query, |b, q| {
            b.iter(|| rewrite_to_mfa(q, &view).unwrap().size())
        });
    }
    group.finish();
}

fn view_answering(c: &mut Criterion) {
    let view = hospital_view();
    let doc = medium_document();
    let query = parse_path("patient[*//record/diagnosis/text()='heart disease']").unwrap();
    let mut group = c.benchmark_group("view_answering");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));

    group.bench_function("rewrite_plus_hype", |b| {
        b.iter(|| {
            let mfa = rewrite_to_mfa(&query, &view).unwrap();
            smoqe_hype::evaluate(&doc, &mfa).answers.len()
        })
    });
    group.bench_function("precompiled_hype", |b| {
        let mfa = rewrite_to_mfa(&query, &view).unwrap();
        b.iter(|| smoqe_hype::evaluate(&doc, &mfa).answers.len())
    });
    group.bench_function("materialize_then_evaluate", |b| {
        b.iter(|| {
            let m = materialize(&view, &doc).unwrap();
            evaluate(&m.tree, m.tree.root(), &query).len()
        })
    });
    group.finish();
}

criterion_group!(benches, rewrite_time, view_answering);
criterion_main!(benches);
