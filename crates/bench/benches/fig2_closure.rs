//! Figure 2 / Corollary 3.3 — the closure-and-complexity table.
//!
//! A report target (`harness = false`) that regenerates the quantitative
//! content behind the paper's Fig. 2 table and Corollary 3.3:
//!
//! * on the Ehrenfeucht–Zeiger complete-graph view family, the size of the
//!   explicit `Xreg` rewriting of `//v_{n-1}` explodes with the number of
//!   view types `n`, while the MFA produced by algorithm `rewrite` grows
//!   polynomially (and both are produced in polynomial time);
//! * on the recursive hospital view σ₀, every query of the corpus is
//!   rewritable into an equivalent MFA (`Xreg` closed under rewriting), and
//!   the MFA size respects the `O(|Q|·|σ|·|DV|)` bound of Theorem 5.1.
//!
//! Run with: `cargo bench -p smoqe-bench --bench fig2_closure`

use std::time::Instant;

use smoqe_rewrite::{rewrite_to_mfa, rewrite_to_xreg};
use smoqe_views::{hospital_view, ViewDefinition};
use smoqe_xml::{Child, ContentModel, Dtd};
use smoqe_xpath::parse_path;

/// The complete-graph view family (see `tests/closure_and_complexity.rs`).
fn complete_graph_view(n: usize) -> ViewDefinition {
    let mut doc = Dtd::new("node");
    let mut node_children = Vec::new();
    for i in 0..n {
        for j in 0..n {
            node_children.push(Child::star(&format!("e{i}_{j}")));
        }
    }
    doc.define("node", ContentModel::Sequence(node_children));
    for i in 0..n {
        for j in 0..n {
            doc.define(
                &format!("e{i}_{j}"),
                ContentModel::Sequence(vec![Child::star("node")]),
            );
        }
    }
    let mut view = Dtd::new("v0");
    for i in 0..n {
        let children = (0..n).map(|j| Child::star(&format!("v{j}"))).collect();
        view.define(&format!("v{i}"), ContentModel::Sequence(children));
    }
    let mut def = ViewDefinition::new(doc, view);
    for i in 0..n {
        for j in 0..n {
            def.annotate_str(&format!("v{i}"), &format!("v{j}"), &format!("e{i}_{j}/node"))
                .unwrap();
        }
    }
    def.check().unwrap();
    def
}

fn main() {
    println!("# Corollary 3.3 vs Theorem 5.1: explicit Xreg rewriting vs MFA rewriting");
    println!(
        "{:>4} {:>10} {:>18} {:>14} {:>18} {:>14}",
        "n", "|DV| size", "explicit |Q'| size", "explicit ms", "MFA |M| size", "MFA ms"
    );
    for n in 2..=6usize {
        let view = complete_graph_view(n);
        let q = parse_path(&format!("//v{}", n - 1)).unwrap();

        let start = Instant::now();
        let direct = rewrite_to_xreg(&q, &view).unwrap();
        let direct_ms = start.elapsed().as_secs_f64() * 1e3;

        let start = Instant::now();
        let mfa = rewrite_to_mfa(&q, &view).unwrap();
        let mfa_ms = start.elapsed().as_secs_f64() * 1e3;

        println!(
            "{:>4} {:>10} {:>18} {:>14.2} {:>18} {:>14.2}",
            n,
            view.view_dtd().size(),
            direct.size,
            direct_ms,
            mfa.size(),
            mfa_ms
        );
    }

    println!();
    println!("# Theorem 5.1 on the recursive hospital view σ₀ (MFA size vs the |Q|·|σ|·|DV| bound)");
    let view = hospital_view();
    let sigma = view.size();
    let dv = view.view_dtd().size();
    println!(
        "{:>60} {:>6} {:>12} {:>16}",
        "query on the view", "|Q|", "MFA size", "|Q|·|σ|·|DV|"
    );
    for query_text in [
        "patient",
        "patient/record/diagnosis",
        "(patient/parent)*/patient[record]",
        "patient[*//record/diagnosis/text()='heart disease']",
        "(patient/parent)*/patient[(parent/patient)*/record/diagnosis[text()='heart disease']]",
    ] {
        let q = parse_path(query_text).unwrap();
        let expanded = smoqe_xpath::expand_on_dtd(&q, view.view_dtd());
        let mfa = rewrite_to_mfa(&q, &view).unwrap();
        println!(
            "{:>60} {:>6} {:>12} {:>16}",
            query_text,
            q.size(),
            mfa.size(),
            expanded.size() * sigma * dv
        );
    }
}
