//! Figure 9 — regular XPath query evaluation times over documents of
//! increasing size: HyPE vs OptHyPE vs OptHyPE-C, plus the translation
//! baseline (the role Galax plays in the paper) measured once per series in
//! the `galax_gap` group.
//!
//! Series: `fig9{a,b,c}/<system>/<document size>` and
//! `galax_gap/{translation_smallest, HyPE_largest}`.
//! Expected shape (paper): the three HyPE variants scale linearly and the
//! optimised variants win; the translation baseline on the *smallest*
//! document already costs more than HyPE on the *largest*.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use smoqe_automata::compile_query;
use smoqe_baseline::evaluate_by_translation;
use smoqe_bench::{document_series, fig9_queries};
use smoqe_hype::{evaluate, evaluate_with_index, ReachabilityIndex};
use smoqe_xml::hospital::hospital_document_dtd;
use smoqe_xpath::parse_path;

fn fig9(c: &mut Criterion) {
    let documents = document_series(4);
    let dtd = hospital_document_dtd();

    for (figure, query_text) in fig9_queries() {
        let query = parse_path(query_text).expect("benchmark query parses");
        let mfa = compile_query(&query);
        let mut group = c.benchmark_group(figure);
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(500))
            .measurement_time(Duration::from_secs(2));

        for doc in &documents {
            let index = ReachabilityIndex::new(&mfa, &dtd, doc.tree.labels());
            let cindex = ReachabilityIndex::new_compressed(&mfa, &dtd, doc.tree.labels());

            group.bench_with_input(
                BenchmarkId::new("HyPE", &doc.label),
                &doc.tree,
                |b, tree| b.iter(|| evaluate(tree, &mfa).answers.len()),
            );
            group.bench_with_input(
                BenchmarkId::new("OptHyPE", &doc.label),
                &doc.tree,
                |b, tree| b.iter(|| evaluate_with_index(tree, &mfa, &index).answers.len()),
            );
            group.bench_with_input(
                BenchmarkId::new("OptHyPE-C", &doc.label),
                &doc.tree,
                |b, tree| b.iter(|| evaluate_with_index(tree, &mfa, &cindex).answers.len()),
            );
        }
        group.finish();
    }

    // The "Galax gap": the translation-based evaluator on the smallest
    // document vs HyPE on the largest (paper: the former needs more time).
    let smallest = &documents.first().expect("non-empty series").tree;
    let largest = &documents.last().expect("non-empty series").tree;
    let (_, query_text) = fig9_queries()[0];
    let query = parse_path(query_text).unwrap();
    let mfa = compile_query(&query);
    let mut group = c.benchmark_group("galax_gap");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    group.bench_function("translation_on_smallest", |b| {
        b.iter(|| evaluate_by_translation(smallest, &query).len())
    });
    group.bench_function("HyPE_on_largest", |b| {
        b.iter(|| evaluate(largest, &mfa).answers.len())
    });
    group.finish();
}

criterion_group!(benches, fig9);
criterion_main!(benches);
