//! Batched multi-query throughput (PR 2) — N queries per document pass vs
//! N sequential passes, plus the query-service cache.
//!
//! Two parts:
//!
//! 1. A **visit-count report** (printed first): for the batch workload on
//!    the mid-sized hospital document, the physical node visits of one
//!    batched pass vs the sum of N sequential HyPE runs, in both pruning
//!    modes. The report *asserts* the PR's acceptance criterion — batched
//!    evaluation performs strictly fewer total node visits than the
//!    sequential sum — so the bench doubles as a smoke test in CI.
//! 2. **Timing series** (Criterion): `sequential` vs `batched` vs the
//!    warm-cache `service` front-end, per pruning mode.
//!
//! Run with: `cargo bench --bench batch_throughput`
//! (`SMOQE_BENCH_JSON=/path/file.json` appends one JSON line per timing.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use smoqe::{EvaluationMode, QueryService};
use smoqe_automata::{compile_query, Mfa};
use smoqe_bench::{batch_workload_queries, medium_document};
use smoqe_hype::{evaluate, evaluate_batch, evaluate_with_index, BatchQuery, ReachabilityIndex};
use smoqe_xml::hospital::hospital_document_dtd;
use smoqe_xml::XmlTree;
use smoqe_xpath::parse_path;

fn compile_workload() -> Vec<Mfa> {
    batch_workload_queries()
        .into_iter()
        .map(|q| compile_query(&parse_path(q).expect("workload query parses")))
        .collect()
}

fn build_indexes(mfas: &[Mfa], doc: &XmlTree) -> Vec<ReachabilityIndex> {
    let dtd = hospital_document_dtd();
    mfas.iter()
        .map(|m| ReachabilityIndex::new(m, &dtd, doc.labels()))
        .collect()
}

/// Part 1: the visit-count report and the acceptance-criterion assertions.
fn visit_report(doc: &XmlTree, mfas: &[Mfa], indexes: &[ReachabilityIndex]) {
    println!(
        "# Batched throughput on a {}-node hospital document, {} queries",
        doc.len(),
        mfas.len()
    );
    for (mode, batch_queries) in [
        (
            "HyPE",
            mfas.iter().map(BatchQuery::new).collect::<Vec<_>>(),
        ),
        (
            "OptHyPE",
            mfas.iter()
                .zip(indexes)
                .map(|(m, i)| BatchQuery::with_index(m, i))
                .collect::<Vec<_>>(),
        ),
    ] {
        let batch = evaluate_batch(doc, &batch_queries);
        let sequential: usize = batch_queries
            .iter()
            .map(|q| match q.index {
                Some(index) => evaluate_with_index(doc, q.mfa, index).stats.nodes_visited,
                None => evaluate(doc, q.mfa).stats.nodes_visited,
            })
            .sum();
        assert_eq!(
            batch.stats.sequential_node_visits, sequential,
            "per-query accounting must equal the solo runs ({mode})"
        );
        assert!(
            batch.stats.nodes_visited < sequential,
            "{mode}: batched pass must visit strictly fewer nodes \
             ({} batched vs {} sequential)",
            batch.stats.nodes_visited,
            sequential
        );
        println!(
            "{mode:<8} sequential visits: {sequential:>8}   batched visits: {:>8}   \
             saved: {:>8} ({:.2}x sharing)",
            batch.stats.nodes_visited,
            batch.stats.visits_saved(),
            batch.stats.sharing_factor()
        );
    }
    println!();
}

/// Part 2: wall-clock timing of the three serving strategies.
fn timing(c: &mut Criterion, doc: &XmlTree, mfas: &[Mfa], indexes: &[ReachabilityIndex]) {
    let mut group = c.benchmark_group("batch_throughput");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    let doc_label = format!("{}q", mfas.len());
    group.bench_with_input(
        BenchmarkId::new("sequential_HyPE", &doc_label),
        doc,
        |b, doc| {
            b.iter(|| {
                mfas.iter()
                    .map(|m| evaluate(doc, m).answers.len())
                    .sum::<usize>()
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("batched_HyPE", &doc_label),
        doc,
        |b, doc| {
            let queries: Vec<BatchQuery> = mfas.iter().map(BatchQuery::new).collect();
            b.iter(|| {
                evaluate_batch(doc, &queries)
                    .results
                    .iter()
                    .map(|r| r.answers.len())
                    .sum::<usize>()
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("sequential_OptHyPE", &doc_label),
        doc,
        |b, doc| {
            b.iter(|| {
                mfas.iter()
                    .zip(indexes)
                    .map(|(m, i)| evaluate_with_index(doc, m, i).answers.len())
                    .sum::<usize>()
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("batched_OptHyPE", &doc_label),
        doc,
        |b, doc| {
            let queries: Vec<BatchQuery> = mfas
                .iter()
                .zip(indexes)
                .map(|(m, i)| BatchQuery::with_index(m, i))
                .collect();
            b.iter(|| {
                evaluate_batch(doc, &queries)
                    .results
                    .iter()
                    .map(|r| r.answers.len())
                    .sum::<usize>()
            })
        },
    );

    // The service front-end over the σ₀ view: repeated view queries with a
    // warm compiled-query + index cache, batched vs one-at-a-time.
    let service = QueryService::hospital_demo();
    let view_queries = [
        "patient",
        "patient/record/diagnosis",
        "(patient/parent)*/patient[record]",
        "patient[not(parent)]",
        "patient[*//record/diagnosis/text()='heart disease']",
    ];
    for q in view_queries {
        service.evaluate(q, doc, EvaluationMode::OptHyPE).unwrap(); // warm the caches
    }
    group.bench_with_input(
        BenchmarkId::new("service_sequential_OptHyPE", view_queries.len()),
        doc,
        |b, doc| {
            b.iter(|| {
                view_queries
                    .iter()
                    .map(|q| {
                        service
                            .evaluate(q, doc, EvaluationMode::OptHyPE)
                            .unwrap()
                            .answers
                            .len()
                    })
                    .sum::<usize>()
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("service_batched_OptHyPE", view_queries.len()),
        doc,
        |b, doc| {
            b.iter(|| {
                service
                    .evaluate_batch(&view_queries, doc, EvaluationMode::OptHyPE)
                    .unwrap()
                    .results
                    .iter()
                    .map(|r| r.answers.len())
                    .sum::<usize>()
            })
        },
    );
    group.finish();
}

fn batch_throughput(c: &mut Criterion) {
    let doc = medium_document();
    let mfas = compile_workload();
    let indexes = build_indexes(&mfas, &doc);
    visit_report(&doc, &mfas, &indexes);
    timing(c, &doc, &mfas, &indexes);
}

criterion_group!(benches, batch_throughput);
criterion_main!(benches);
