//! Compiled-IR evaluation throughput (PR 4) — the bitset `CompiledMfa`
//! engines vs the interpreted reference engines over the same workload.
//!
//! Two parts:
//!
//! 1. A **correctness + allocation report** (printed first). For the
//!    mid-sized hospital document it *asserts* the PR's acceptance
//!    criteria — so the bench doubles as a smoke test in CI:
//!    * compiled answers **and `HypeStats`** equal the interpreted
//!      engines', solo and batched (the corpus-wide differential suites
//!      check the same over both corpora; this pins the bench workload);
//!    * the compiled engine **does not allocate in the per-node steady
//!      state**: growing the document only grows allocations through the
//!      output (`cans` arena growth, answer sets), measured by a counting
//!      global allocator as *allocations per additionally visited node*
//!      and asserted far below one — while the interpreted engine
//!      allocates multiple times per node;
//!    * compiled node throughput (visited nodes / second) beats the
//!      interpreted path on the batch workload.
//!
//! 2. **Timing series** (Criterion): solo, 10-query batch and streamed
//!    evaluation, interpreted vs compiled, on identical pre-parsed input.
//!
//! Run with: `cargo bench --bench compiled_throughput`
//! (`SMOQE_BENCH_JSON=/path/file.json` appends one JSON line per timing.)

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use smoqe_automata::{compile_query, CompiledMfa, Mfa};
use smoqe_bench::{batch_workload_queries, medium_document};
use smoqe_hype::{
    evaluate_batch_compiled, evaluate_compiled, evaluate_stream_batch, interpreted, BatchQuery,
    CompiledBatchQuery, StreamHype,
};
use smoqe_toxgene::{generate_hospital, HospitalConfig};
use smoqe_xml::{to_xml_string, LabelInterner, XmlTree};
use smoqe_xpath::parse_path;
use std::sync::Arc;

/// Counts every heap allocation so the report can assert the compiled
/// engine's steady-state discipline. Counting is the only addition; all
/// calls forward to the system allocator.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// The solo query of the report: broad enough to keep most of the document
/// live, so the comparison measures the per-node substrate, not pruning.
const SOLO_QUERY: &str = "//diagnosis";

fn workload_mfas() -> Vec<Mfa> {
    batch_workload_queries()
        .into_iter()
        .map(|q| compile_query(&parse_path(q).expect("workload query parses")))
        .collect()
}

fn sized_document(patients: usize) -> XmlTree {
    generate_hospital(&HospitalConfig {
        patients,
        departments: 6,
        heart_disease_fraction: 0.3,
        max_ancestor_depth: 2,
        sibling_probability: 0.3,
        visits_per_patient: 2,
        test_visit_fraction: 0.3,
        seed: 2007,
    })
}

/// Allocations performed by one run of `f` (best of `runs`, to shed noise
/// from lazy one-time initialisation inside the first call).
fn allocs_during<T>(runs: usize, mut f: impl FnMut() -> T) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..runs {
        let before = allocations();
        let out = f();
        let spent = allocations() - before;
        criterion::black_box(out);
        best = best.min(spent);
    }
    best
}

/// Part 1: differential + allocation-discipline assertions and the
/// node-throughput report.
fn correctness_and_allocation_report(tree: &XmlTree, workload: &[Mfa]) {
    println!(
        "# Compiled-IR throughput on a {}-node hospital document, {} batch queries",
        tree.len(),
        workload.len()
    );

    let solo = compile_query(&parse_path(SOLO_QUERY).expect("solo query parses"));
    let compile_start = Instant::now();
    let solo_ir = Arc::new(CompiledMfa::new(&solo));
    let compile_secs = compile_start.elapsed().as_secs_f64();
    let workload_irs: Vec<Arc<CompiledMfa>> = workload
        .iter()
        .map(|m| Arc::new(CompiledMfa::new(m)))
        .collect();

    // Differential gate: answers AND stats equal the interpreted engines.
    let reference = interpreted::evaluate(tree, &solo);
    let compiled = evaluate_compiled(tree, &solo_ir);
    assert_eq!(compiled.answers, reference.answers, "solo answers must match");
    assert_eq!(compiled.stats, reference.stats, "solo stats must match");
    let batch_queries: Vec<BatchQuery> = workload.iter().map(BatchQuery::new).collect();
    let compiled_queries: Vec<CompiledBatchQuery> = workload_irs
        .iter()
        .map(|ir| CompiledBatchQuery::new(Arc::clone(ir)))
        .collect();
    let reference_batch = interpreted::evaluate_batch(tree, &batch_queries);
    let compiled_batch = evaluate_batch_compiled(tree, &compiled_queries);
    assert_eq!(compiled_batch.stats, reference_batch.stats, "batch stats must match");
    for (i, (c, r)) in compiled_batch
        .results
        .iter()
        .zip(&reference_batch.results)
        .enumerate()
    {
        assert_eq!(c.answers, r.answers, "batch answers differ at query {i}");
        assert_eq!(c.stats, r.stats, "batch per-query stats differ at query {i}");
    }

    // Allocation discipline, absolute: the compiled run allocates a small
    // fraction of what the interpreted run does on the same input.
    let compiled_allocs = allocs_during(3, || evaluate_compiled(tree, &solo_ir));
    let interpreted_allocs = allocs_during(3, || interpreted::evaluate(tree, &solo));
    let visited = compiled.stats.nodes_visited as u64;
    assert!(
        compiled_allocs * 10 < interpreted_allocs,
        "compiled path must allocate <10% of the interpreted path \
         (compiled {compiled_allocs}, interpreted {interpreted_allocs})"
    );

    // Allocation discipline, per node: doubling the document must not add
    // per-node allocations — only output-proportional ones (answer sets,
    // amortised cans growth). Both trees are parsed and their IR runtimes
    // warmed before counting.
    let small = sized_document(700);
    let large = sized_document(1_400);
    let small_visits = evaluate_compiled(&small, &solo_ir).stats.nodes_visited as u64;
    let large_visits = evaluate_compiled(&large, &solo_ir).stats.nodes_visited as u64;
    let small_allocs = allocs_during(3, || evaluate_compiled(&small, &solo_ir));
    let large_allocs = allocs_during(3, || evaluate_compiled(&large, &solo_ir));
    let delta_allocs = large_allocs.saturating_sub(small_allocs);
    let delta_visits = large_visits - small_visits;
    let per_node = delta_allocs as f64 / delta_visits as f64;
    assert!(
        per_node < 0.25,
        "compiled steady state must not allocate per node: \
         {delta_allocs} extra allocations over {delta_visits} extra visited nodes \
         ({per_node:.4}/node)"
    );

    // Node throughput: visited element nodes per second, batch workload.
    let timed = |f: &mut dyn FnMut() -> u64| {
        let start = Instant::now();
        let mut nodes = 0u64;
        let mut iters = 0u32;
        while start.elapsed() < Duration::from_millis(600) {
            nodes += f();
            iters += 1;
        }
        (nodes as f64 / start.elapsed().as_secs_f64(), iters)
    };
    let (interp_nps, _) = timed(&mut || {
        interpreted::evaluate_batch(tree, &batch_queries)
            .results
            .iter()
            .map(|r| r.stats.nodes_visited as u64)
            .sum()
    });
    let (compiled_nps, _) = timed(&mut || {
        evaluate_batch_compiled(tree, &compiled_queries)
            .results
            .iter()
            .map(|r| r.stats.nodes_visited as u64)
            .sum()
    });
    assert!(
        compiled_nps > interp_nps,
        "compiled node throughput ({compiled_nps:.0}/s) must beat interpreted ({interp_nps:.0}/s)"
    );

    println!(
        "allocations: compiled {compiled_allocs} vs interpreted {interpreted_allocs} \
         ({:.1}x fewer) over {visited} visited nodes",
        interpreted_allocs as f64 / compiled_allocs.max(1) as f64
    );
    println!(
        "steady state: {delta_allocs} extra allocations / {delta_visits} extra visited nodes \
         = {per_node:.4} allocs/node (interpreted: {:.1} allocs/node)",
        interpreted_allocs as f64 / visited as f64
    );
    println!(
        "node throughput (batch): interpreted {:.2} Mnodes/s, compiled {:.2} Mnodes/s ({:.2}x); \
         IR compile {compile_secs:.6}s, IR size {} bytes",
        interp_nps / 1e6,
        compiled_nps / 1e6,
        compiled_nps / interp_nps,
        solo_ir.memory_bytes()
    );
    println!();
}

/// Part 2: wall-clock timing of the two substrates on identical inputs.
fn timing(c: &mut Criterion, tree: &XmlTree, workload: &[Mfa]) {
    let solo = compile_query(&parse_path(SOLO_QUERY).expect("solo query parses"));
    let solo_ir = Arc::new(CompiledMfa::new(&solo));
    let workload_irs: Vec<Arc<CompiledMfa>> = workload
        .iter()
        .map(|m| Arc::new(CompiledMfa::new(m)))
        .collect();
    let xml = to_xml_string(tree);

    let mut group = c.benchmark_group("compiled_throughput");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    group.bench_with_input(BenchmarkId::new("interpreted", "solo"), tree, |b, tree| {
        b.iter(|| interpreted::evaluate(tree, &solo).answers.len())
    });
    group.bench_with_input(BenchmarkId::new("compiled", "solo"), tree, |b, tree| {
        b.iter(|| evaluate_compiled(tree, &solo_ir).answers.len())
    });

    let batch_label = format!("{}q", workload.len());
    group.bench_with_input(
        BenchmarkId::new("interpreted_batched", &batch_label),
        tree,
        |b, tree| {
            let queries: Vec<BatchQuery> = workload.iter().map(BatchQuery::new).collect();
            b.iter(|| {
                interpreted::evaluate_batch(tree, &queries)
                    .results
                    .iter()
                    .map(|r| r.answers.len())
                    .sum::<usize>()
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("compiled_batched", &batch_label),
        tree,
        |b, tree| {
            let queries: Vec<CompiledBatchQuery> = workload_irs
                .iter()
                .map(|ir| CompiledBatchQuery::new(Arc::clone(ir)))
                .collect();
            b.iter(|| {
                evaluate_batch_compiled(tree, &queries)
                    .results
                    .iter()
                    .map(|r| r.answers.len())
                    .sum::<usize>()
            })
        },
    );

    group.bench_with_input(
        BenchmarkId::new("interpreted_stream", "solo"),
        &xml,
        |b, xml| {
            b.iter(|| {
                let mut reader = smoqe_xml::XmlStreamReader::new(xml.as_bytes());
                interpreted::evaluate_stream(&mut reader, &solo)
                    .expect("streams")
                    .0
                    .answers
                    .len()
            })
        },
    );
    group.bench_with_input(BenchmarkId::new("compiled_stream", "solo"), &xml, |b, xml| {
        b.iter(|| {
            let mut reader = smoqe_xml::XmlStreamReader::new(xml.as_bytes());
            let query = CompiledBatchQuery::new(Arc::clone(&solo_ir));
            StreamHype::from_compiled(&[query], LabelInterner::new())
                .run(&mut reader)
                .expect("streams")
                .results[0]
                .answers
                .len()
        })
    });
    group.finish();

    // The public convenience entry points compile per call; keep them
    // honest in the series too (IR compilation is part of this timing).
    let mut group = c.benchmark_group("compiled_throughput_convenience");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    group.bench_with_input(
        BenchmarkId::new("compile_and_stream", "solo"),
        &xml,
        |b, xml| {
            b.iter(|| {
                let mut reader = smoqe_xml::XmlStreamReader::new(xml.as_bytes());
                evaluate_stream_batch(&mut reader, &[BatchQuery::new(&solo)])
                    .expect("streams")
                    .results[0]
                    .answers
                    .len()
            })
        },
    );
    group.finish();
}

fn compiled_throughput(c: &mut Criterion) {
    let tree = medium_document();
    let workload = workload_mfas();
    correctness_and_allocation_report(&tree, &workload);
    timing(c, &tree, &workload);
}

criterion_group!(benches, compiled_throughput);
criterion_main!(benches);
