//! Across-documents corpus throughput (PR 6) — `smoqe_hype::corpus` and the
//! `DocumentStore`-backed `QueryService` front-ends against the sequential
//! per-pair loop.
//!
//! Two parts, mirroring `parallel_throughput`:
//!
//! 1. A **correctness + throughput report** (printed first), doubling as a
//!    smoke test in CI:
//!    * corpus-parallel answers **and per-pair `HypeStats`** equal the
//!      sequential loop's at every measured thread budget, at both layers
//!      (raw hype tasks and the service over a `DocumentStore`) — this is
//!      always asserted, on any hardware;
//!    * node throughput (visited nodes / second across the whole corpus)
//!      is measured sequentially and at 1/2/4/8 threads, and appended to
//!      `SMOQE_BENCH_JSON` alongside the Criterion timings;
//!    * on hardware with **≥ 4 cores** the report *asserts* a ≥ 1.5×
//!      node-throughput win at 4 threads. Across-documents routing has no
//!      shard-skew cap — each worker owns whole documents — so this gate
//!      is the easiest of the parallel gates to meet; on fewer cores it is
//!      reported as skipped (core count recorded in the JSON) because
//!      time-sliced threads cannot express a wall-clock win.
//!
//! 2. **Timing series** (Criterion): the corpus workload sequential vs
//!    parallel at each budget, plus the snapshot save/load codec and the
//!    three `DocumentStore` ingest routes.
//!
//! Run with: `cargo bench --bench corpus_throughput`
//! (`SMOQE_BENCH_JSON=/path/file.json` appends one JSON line per series.)

use std::io::Write as _;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use smoqe::{DocumentStore, EvaluationMode, QueryService};
use smoqe_automata::{compile_query, CompiledMfa};
use smoqe_hype::{evaluate_corpus, evaluate_corpus_parallel, CorpusTask};
use smoqe_toxgene::{generate_hospital, HospitalConfig};
use smoqe_xml::{snapshot, to_xml_string, XmlTree};
use smoqe_xpath::parse_path;

/// Thread budgets of the measured series.
const BUDGETS: &[usize] = &[1, 2, 4, 8];

/// Queries of the corpus workload — a broad scan, a deep path and a
/// filtered closure, so per-pair costs vary and the claim-counter routing
/// has skew to absorb.
const QUERIES: &[&str] = &["//diagnosis", "patient/record/diagnosis", "patient[not(parent)]"];

/// The corpus: several medium documents of varying size, the many-document
/// shape the across-documents axis exists for.
fn corpus() -> Vec<XmlTree> {
    (0..12)
        .map(|i| {
            generate_hospital(&HospitalConfig {
                patients: 240 + 60 * (i % 4),
                departments: 8,
                heart_disease_fraction: 0.3,
                max_ancestor_depth: 2,
                visits_per_patient: 2,
                seed: 4000 + i as u64,
                ..Default::default()
            })
        })
        .collect()
}

/// Appends one custom JSON line next to the Criterion records.
fn emit_json(line: &str) {
    let Ok(path) = std::env::var("SMOQE_BENCH_JSON") else { return };
    if path.is_empty() {
        return;
    }
    if let Ok(mut file) = std::fs::OpenOptions::new().create(true).append(true).open(&path) {
        let _ = writeln!(file, "{line}");
    }
}

/// Nodes-per-second of `f` over a `window`, where `f` returns the node
/// visits of one full corpus pass.
fn node_throughput(window: Duration, f: &mut dyn FnMut() -> u64) -> f64 {
    let start = Instant::now();
    let mut nodes = 0u64;
    while start.elapsed() < window {
        nodes += f();
    }
    nodes as f64 / start.elapsed().as_secs_f64()
}

/// The measurement window of the first throughput pass.
const WINDOW: Duration = Duration::from_millis(700);

fn corpus_tasks<'a>(docs: &'a [XmlTree], irs: &[Arc<CompiledMfa>]) -> Vec<CorpusTask<'a>> {
    docs.iter()
        .flat_map(|doc| irs.iter().map(move |ir| CorpusTask::new(doc, Arc::clone(ir))))
        .collect()
}

fn visited(results: &[smoqe_hype::HypeResult]) -> u64 {
    results.iter().map(|r| r.stats.nodes_visited as u64).sum()
}

/// Part 1: differential gates at both layers, the node-throughput series,
/// and (hardware permitting) the 4-thread speedup assertion.
fn correctness_and_throughput_report(docs: &[XmlTree], irs: &[Arc<CompiledMfa>]) {
    let cores = thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let total_nodes: usize = docs.iter().map(XmlTree::len).sum();
    let tasks = corpus_tasks(docs, irs);
    println!(
        "# Corpus evaluation over {} documents ({total_nodes} nodes total), \
         {} queries, {} (document, query) pairs, {cores} core(s)",
        docs.len(),
        irs.len(),
        tasks.len()
    );

    // Differential gate, layer 1 (raw hype tasks): always asserted.
    let sequential = evaluate_corpus(&tasks);
    for &threads in BUDGETS {
        let parallel = evaluate_corpus_parallel(&tasks, threads);
        assert_eq!(
            parallel, sequential,
            "corpus-parallel must be bit-identical to sequential @{threads}t"
        );
    }
    println!("differential gate (hype): parallel ≡ sequential at {BUDGETS:?} threads");

    // Differential gate, layer 2 (service over a DocumentStore): always
    // asserted, and exercises snapshot ingest + the fingerprinted caches.
    let store = DocumentStore::new();
    let requests: Vec<_> = docs
        .iter()
        .flat_map(|doc| {
            let id = store
                .insert_snapshot(&snapshot::save(doc))
                .expect("saved snapshots load");
            QUERIES.iter().map(move |&q| (id, q))
        })
        .collect();
    let service = QueryService::hospital_demo();
    let service_sequential = service
        .evaluate_corpus(&store, &requests, EvaluationMode::HyPE)
        .unwrap();
    for &threads in BUDGETS {
        let service = QueryService::with_config(
            smoqe::SmoqeEngine::hospital_demo().view().clone(),
            smoqe::ServiceConfig {
                parallel_threads: threads,
                ..smoqe::ServiceConfig::default()
            },
        )
        .expect("demo view compiles");
        let parallel = service
            .evaluate_corpus_parallel(&store, &requests, EvaluationMode::HyPE)
            .unwrap();
        assert_eq!(
            parallel, service_sequential,
            "service corpus-parallel must be bit-identical @{threads}t"
        );
    }
    println!("differential gate (service): parallel ≡ sequential at {BUDGETS:?} threads");

    // Node-throughput series over the raw task list.
    let sequential_nps =
        node_throughput(WINDOW, &mut || visited(&evaluate_corpus(&tasks)));
    emit_json(&format!(
        "{{\"id\": \"corpus_throughput/nodes_per_sec/sequential\", \
         \"nodes_per_sec\": {sequential_nps:.0}, \"cores\": {cores}}}"
    ));
    println!("node throughput: sequential {:.2} Mnodes/s", sequential_nps / 1e6);

    let mut speedup_at = Vec::new();
    for &threads in BUDGETS {
        let nps = node_throughput(WINDOW, &mut || {
            visited(&evaluate_corpus_parallel(&tasks, threads))
        });
        let speedup = nps / sequential_nps;
        speedup_at.push((threads, speedup));
        emit_json(&format!(
            "{{\"id\": \"corpus_throughput/nodes_per_sec/parallel_{threads}t\", \
             \"nodes_per_sec\": {nps:.0}, \"speedup\": {speedup:.3}, \"cores\": {cores}}}"
        ));
        println!(
            "node throughput: parallel @{threads}t {:.2} Mnodes/s ({speedup:.2}x)",
            nps / 1e6
        );
    }

    // The 4-thread speedup gate, where the hardware can express one.
    let (_, mut speedup_4t) = *speedup_at
        .iter()
        .find(|&&(t, _)| t == 4)
        .expect("4 threads is a measured budget");
    let gate_enforced = cores >= 4;
    if gate_enforced && speedup_4t < 1.5 {
        // Give shared runners a second, longer window before failing.
        let retry_window = Duration::from_millis(2_500);
        let sequential_retry =
            node_throughput(retry_window, &mut || visited(&evaluate_corpus(&tasks)));
        let parallel_retry = node_throughput(retry_window, &mut || {
            visited(&evaluate_corpus_parallel(&tasks, 4))
        });
        let retried = parallel_retry / sequential_retry;
        println!("speedup gate: first pass {speedup_4t:.2}x, retry pass {retried:.2}x");
        speedup_4t = speedup_4t.max(retried);
    }
    emit_json(&format!(
        "{{\"id\": \"corpus_throughput/speedup_gate_4t\", \"speedup\": {speedup_4t:.3}, \
         \"threshold\": 1.5, \"cores\": {cores}, \"enforced\": {gate_enforced}}}"
    ));
    if gate_enforced {
        assert!(
            speedup_4t >= 1.5,
            "4-thread corpus throughput must be ≥1.5x sequential on ≥4 cores \
             (measured {speedup_4t:.2}x on {cores} cores, best of two passes)"
        );
        println!("speedup gate: {speedup_4t:.2}x at 4 threads (≥1.5x required) — PASS");
    } else {
        println!(
            "speedup gate: SKIPPED ({cores} core(s) available; measured {speedup_4t:.2}x). \
             Enforced on ≥4-core hardware."
        );
    }
    println!();
}

/// Part 2: wall-clock timing series — corpus evaluation, the snapshot
/// codec, and the store ingest routes.
fn timing(c: &mut Criterion, docs: &[XmlTree], irs: &[Arc<CompiledMfa>]) {
    let tasks = corpus_tasks(docs, irs);
    let label = format!("{}d_x_{}q", docs.len(), irs.len());

    let mut group = c.benchmark_group("corpus_throughput");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    group.bench_function(BenchmarkId::new("sequential", &label), |b| {
        b.iter(|| visited(&evaluate_corpus(&tasks)))
    });
    for &threads in BUDGETS {
        group.bench_function(BenchmarkId::new(format!("parallel_{threads}t"), &label), |b| {
            b.iter(|| visited(&evaluate_corpus_parallel(&tasks, threads)))
        });
    }

    // The snapshot codec on the first corpus document.
    let doc = &docs[0];
    let bytes = snapshot::save(doc);
    let xml = to_xml_string(doc);
    let codec_label = format!("{}n", doc.len());
    group.bench_function(BenchmarkId::new("snapshot_save", &codec_label), |b| {
        b.iter(|| snapshot::save(doc).len())
    });
    group.bench_function(BenchmarkId::new("snapshot_load", &codec_label), |b| {
        b.iter(|| snapshot::load(&bytes).expect("saved snapshots load").len())
    });
    group.bench_function(BenchmarkId::new("parse_xml", &codec_label), |b| {
        b.iter(|| smoqe_xml::parse_document(&xml).expect("serialized XML parses").len())
    });

    // Store ingest: snapshot route vs XML route (fresh store per pass so
    // content-address dedup does not short-circuit the insert).
    group.bench_function(BenchmarkId::new("store_insert_snapshot", &codec_label), |b| {
        b.iter(|| {
            let store = DocumentStore::new();
            store.insert_snapshot(&bytes).expect("saved snapshots load")
        })
    });
    group.bench_function(BenchmarkId::new("store_insert_xml", &codec_label), |b| {
        b.iter(|| {
            let store = DocumentStore::new();
            store.insert_xml(&xml).expect("serialized XML parses")
        })
    });
    group.finish();
}

fn corpus_throughput(c: &mut Criterion) {
    let docs = corpus();
    let irs: Vec<Arc<CompiledMfa>> = QUERIES
        .iter()
        .map(|q| Arc::new(CompiledMfa::new(&compile_query(&parse_path(q).expect("parses")))))
        .collect();
    correctness_and_throughput_report(&docs, &irs);
    timing(c, &docs, &irs);
}

criterion_group!(benches, corpus_throughput);
criterion_main!(benches);
