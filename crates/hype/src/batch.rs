//! Batched multi-query HyPE evaluation.
//!
//! A production SMOQE deployment does not run one query per document
//! traversal: many concurrent callers pose (often different) queries against
//! the same document. This module drives **N compiled MFAs through a single
//! depth-first pass**: the pending selecting-NFA states and filter-state
//! requests are kept per query — conceptually one merged set keyed by
//! `(query, state)` — and a subtree is descended into as soon as *any* of
//! the batched queries still has work there. Pruning therefore only skips a
//! subtree when **every** query agrees it is dead (its basic prune and, when
//! an index is supplied, its OptHyPE prune both fire).
//!
//! Every per-query artefact — the candidate-answer DAG `cans`, the
//! [`HypeStats`](crate::HypeStats), the answer set — is built exactly as the solo evaluator
//! would build it: whether a query participates in a child visit depends
//! only on that query's own state at the node, so its recursion tree, vertex
//! numbering and statistics are *identical* to a stand-alone run. The solo
//! entry points in [`crate::engine`] are in fact implemented as the 1-query
//! special case of this engine, and the batched-vs-sequential integration
//! suite checks the equivalence query-by-query over the whole corpus.
//!
//! What batching buys is the traversal itself: a node shared by the pending
//! sets of k queries is visited once instead of k times, so the *physical*
//! visit count is the size of the union of the per-query visit sets
//! ([`BatchStats::nodes_visited`]) rather than their sum
//! ([`BatchStats::sequential_node_visits`]).

use std::collections::{BTreeSet, HashMap};
use std::rc::Rc;

use smoqe_automata::{AfaId, AfaState, AfaStateId, Mfa, StateId};
use smoqe_xml::{LabelId, NodeId, XmlTree};

use crate::engine::HypeResult;
use crate::index::ReachabilityIndex;
use crate::runtime::{collect_answers, AfaValues, QueryRuntime};

/// One query of a batch: a compiled MFA plus, optionally, its OptHyPE(-C)
/// reachability index.
#[derive(Debug, Clone, Copy)]
pub struct BatchQuery<'a> {
    /// The compiled automaton.
    pub mfa: &'a Mfa,
    /// The DTD reachability index, when OptHyPE pruning is wanted for this
    /// query. Queries of one batch may mix indexed and plain evaluation.
    pub index: Option<&'a ReachabilityIndex>,
}

impl<'a> BatchQuery<'a> {
    /// A batch member evaluated with plain HyPE.
    pub fn new(mfa: &'a Mfa) -> Self {
        BatchQuery { mfa, index: None }
    }

    /// A batch member evaluated with OptHyPE(-C) pruning.
    pub fn with_index(mfa: &'a Mfa, index: &'a ReachabilityIndex) -> Self {
        BatchQuery {
            mfa,
            index: Some(index),
        }
    }
}

/// Traversal statistics of one batched run, aggregated over all queries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Number of queries in the batch.
    pub queries: usize,
    /// Number of element nodes in the evaluated subtree.
    pub nodes_total: usize,
    /// Number of element nodes physically visited by the shared traversal
    /// (the size of the union of the per-query visit sets).
    pub nodes_visited: usize,
    /// Sum of the per-query visit counts — exactly the number of node visits
    /// N sequential solo runs would have performed.
    pub sequential_node_visits: usize,
}

impl BatchStats {
    /// Node visits saved relative to running every query on its own pass.
    pub fn visits_saved(&self) -> usize {
        self.sequential_node_visits.saturating_sub(self.nodes_visited)
    }

    /// How many sequential visits each physical visit amortises
    /// (`sequential / physical`, in `[1, N]` for non-empty batches).
    pub fn sharing_factor(&self) -> f64 {
        if self.nodes_visited == 0 {
            1.0
        } else {
            self.sequential_node_visits as f64 / self.nodes_visited as f64
        }
    }
}

/// The result of a batched run: one [`HypeResult`] per query, in input
/// order, plus the shared traversal statistics.
#[derive(Debug, Clone)]
pub struct BatchResult {
    /// Per-query answers and statistics, index-aligned with the input batch.
    pub results: Vec<HypeResult>,
    /// Aggregate statistics of the shared traversal.
    pub stats: BatchStats,
}

/// Evaluates every query of `queries` at the root of `tree` in one pass.
///
/// Results are index-aligned with `queries`, and each one is exactly what a
/// solo [`crate::evaluate`] run would have produced — answers *and*
/// [`HypeStats`](crate::HypeStats) — while the document is traversed only once:
///
/// ```
/// use smoqe_automata::compile_query;
/// use smoqe_hype::{evaluate_batch, BatchQuery};
/// use smoqe_xml::XmlTreeBuilder;
/// use smoqe_xpath::parse_path;
///
/// let mut b = XmlTreeBuilder::new();
/// let root = b.root("hospital");
/// let patient = b.child(root, "patient");
/// b.child_with_text(patient, "pname", "Alice");
/// let doc = b.finish();
///
/// let patients = compile_query(&parse_path("patient").unwrap());
/// let names = compile_query(&parse_path("patient/pname").unwrap());
/// let batch = evaluate_batch(&doc, &[BatchQuery::new(&patients), BatchQuery::new(&names)]);
///
/// assert_eq!(batch.results.len(), 2);
/// assert_eq!(batch.results[0].answers.len(), 1); // the <patient>
/// assert_eq!(batch.results[1].answers.len(), 1); // its <pname>
/// // The shared pass performs no more visits than N sequential runs would.
/// assert!(batch.stats.nodes_visited <= batch.stats.sequential_node_visits);
/// ```
pub fn evaluate_batch(tree: &XmlTree, queries: &[BatchQuery]) -> BatchResult {
    evaluate_batch_at(tree, tree.root(), queries)
}

/// Evaluates every query of `queries` at `context` in one pass.
pub fn evaluate_batch_at(tree: &XmlTree, context: NodeId, queries: &[BatchQuery]) -> BatchResult {
    let nodes_total = tree.subtree_size(context);
    if queries.is_empty() {
        return BatchResult {
            results: Vec::new(),
            stats: BatchStats {
                queries: 0,
                nodes_total,
                nodes_visited: 0,
                sequential_node_visits: 0,
            },
        };
    }

    let mut engine = BatchEngine {
        tree,
        runtimes: queries
            .iter()
            .map(|q| QueryRuntime::new(tree.labels(), q))
            .collect(),
        physical_visits: 0,
    };
    for rt in &mut engine.runtimes {
        rt.stats.nodes_total = nodes_total;
    }

    // Every query starts at the context node with its NFA start state and no
    // pending filter requests — exactly the solo evaluator's initial call.
    let pending = queries
        .iter()
        .enumerate()
        .map(|(query, q)| Pending {
            query,
            entry_states: vec![q.mfa.nfa().start()],
            requests: Vec::new(),
            parent_vertices: Rc::new(Vec::new()),
        })
        .collect();
    let outcomes = engine.visit(context, pending);

    let mut init_of: Vec<Vec<u32>> = vec![Vec::new(); queries.len()];
    for outcome in outcomes {
        init_of[outcome.query] = outcome.init;
    }

    let mut results = Vec::with_capacity(queries.len());
    let mut sequential_node_visits = 0;
    for (query, rt) in engine.runtimes.into_iter().enumerate() {
        let answers = collect_answers(&rt.cans, &init_of[query]);
        let mut stats = rt.stats;
        stats.cans_vertices = rt.cans.len();
        stats.cans_edges = rt.cans.iter().map(|v| v.edges.len()).sum();
        sequential_node_visits += stats.nodes_visited;
        results.push(HypeResult { answers, stats });
    }
    BatchResult {
        results,
        stats: BatchStats {
            queries: queries.len(),
            nodes_total,
            nodes_visited: engine.physical_visits,
            sequential_node_visits,
        },
    }
}

// ---------------------------------------------------------------------------
// The shared traversal.
// ---------------------------------------------------------------------------

/// One query's pending work at a node about to be visited.
struct Pending {
    query: usize,
    entry_states: Vec<StateId>,
    requests: Vec<(AfaId, AfaStateId)>,
    /// The `(state, cans vertex)` pairs of the query at the parent node,
    /// used to wire parent→child edges into the query's `cans` DAG.
    /// Reference-counted so the one list a node builds is shared by all of
    /// its descended children instead of being cloned per child.
    parent_vertices: Rc<Vec<(StateId, u32)>>,
}

/// What a visit hands back up, per participating query.
struct Outcome {
    query: usize,
    /// Filter values computed at this node (for the parent's bottom-up pass).
    values: AfaValues,
    /// Vertex ids of the query's entry states at this node — the `Init` set
    /// when this node is the evaluation context.
    init: Vec<u32>,
}

/// Per-query state local to one node visit.
struct Local {
    query: usize,
    entry_states: Vec<StateId>,
    mstates: Vec<StateId>,
    vertex_of: HashMap<StateId, u32>,
    closure: BTreeSet<(AfaId, AfaStateId)>,
    my_vertices: Rc<Vec<(StateId, u32)>>,
}

struct BatchEngine<'a> {
    tree: &'a XmlTree,
    runtimes: Vec<QueryRuntime<'a>>,
    /// Nodes visited by the shared traversal (each counted once however many
    /// queries are pending there).
    physical_visits: usize,
}

impl BatchEngine<'_> {
    /// Visits `node` for every query in `pending`: builds each query's
    /// `cans` vertices, decides per child which queries still have work
    /// there, descends once per live child, and evaluates the pending filter
    /// states bottom-up. Returns one [`Outcome`] per element of `pending`,
    /// in order.
    fn visit(&mut self, node: NodeId, pending: Vec<Pending>) -> Vec<Outcome> {
        self.physical_visits += 1;
        let node_label = self.tree.label(node);

        // Per-query front half: vertices, ε edges, parent edges, request
        // closure — identical to the solo evaluator's bookkeeping.
        let mut locals: Vec<Local> = Vec::with_capacity(pending.len());
        for p in pending {
            let rt = &mut self.runtimes[p.query];
            rt.stats.nodes_visited += 1;
            let nfa = rt.mfa.nfa();
            let mstates = nfa.eps_closure(&p.entry_states);

            // Vertices for every state assumed at this node.
            let mut vertex_of: HashMap<StateId, u32> = HashMap::with_capacity(mstates.len());
            for &s in &mstates {
                let idx = rt.cans.len() as u32;
                rt.cans.push(crate::runtime::CansVertex {
                    node,
                    is_final: nfa.state(s).is_final,
                    valid: true,
                    edges: Vec::new(),
                });
                vertex_of.insert(s, idx);
            }
            // Within-node ε edges.
            for &s in &mstates {
                let from = vertex_of[&s];
                for &t in &nfa.state(s).eps {
                    if let Some(&to) = vertex_of.get(&t) {
                        rt.cans[from as usize].edges.push(to);
                    }
                }
            }
            // Edges from the parent's vertices into this node's entry states.
            for &(sp, vp) in p.parent_vertices.iter() {
                for &(t, tgt) in &nfa.state(sp).trans {
                    if rt.label_map.matches(t, node_label) {
                        if let Some(&to) = vertex_of.get(&tgt) {
                            rt.cans[vp as usize].edges.push(to);
                        }
                    }
                }
            }

            // Filters triggered here (λ annotations) plus those requested by
            // the parent, closed under operator-state successors.
            let mut request_set: BTreeSet<(AfaId, AfaStateId)> = p.requests.into_iter().collect();
            for &s in &mstates {
                if let Some(afa) = nfa.state(s).afa {
                    request_set.insert((afa, rt.mfa.afa(afa).start()));
                }
            }
            let closure = rt.close_requests(request_set);

            let my_vertices: Rc<Vec<(StateId, u32)>> =
                Rc::new(mstates.iter().map(|&s| (s, vertex_of[&s])).collect());
            locals.push(Local {
                query: p.query,
                entry_states: p.entry_states,
                mstates,
                vertex_of,
                closure,
                my_vertices,
            });
        }

        // Shared descent: a child is visited once if any query has work
        // there; each query's participation is decided by its own pruning
        // rules, exactly as in a solo run.
        let children: Vec<NodeId> = self.tree.children(node).to_vec();
        let mut child_values: Vec<Vec<(LabelId, AfaValues)>> = vec![Vec::new(); locals.len()];
        for child in children {
            let child_label = self.tree.label(child);
            let mut child_pending: Vec<Pending> = Vec::new();
            let mut slots: Vec<usize> = Vec::new();
            for (slot, local) in locals.iter().enumerate() {
                let rt = &mut self.runtimes[local.query];
                let nfa = rt.mfa.nfa();
                let mut entry_c: Vec<StateId> = Vec::new();
                for &s in &local.mstates {
                    for &(t, tgt) in &nfa.state(s).trans {
                        if rt.label_map.matches(t, child_label) && !entry_c.contains(&tgt) {
                            entry_c.push(tgt);
                        }
                    }
                }
                let mut requests_c: Vec<(AfaId, AfaStateId)> = Vec::new();
                for &(afa, q) in &local.closure {
                    if let AfaState::Trans(t, tgt) = rt.mfa.afa(afa).state(q) {
                        if rt.label_map.matches(*t, child_label)
                            && !requests_c.contains(&(afa, *tgt))
                        {
                            requests_c.push((afa, *tgt));
                        }
                    }
                }
                if entry_c.is_empty() && requests_c.is_empty() {
                    continue; // basic pruning: nothing can happen below
                }
                if rt.can_skip_subtree(child_label, &entry_c, &requests_c) {
                    continue; // index pruning: all pending filter values are false
                }
                child_pending.push(Pending {
                    query: local.query,
                    entry_states: entry_c,
                    requests: requests_c,
                    parent_vertices: Rc::clone(&local.my_vertices),
                });
                slots.push(slot);
            }
            if child_pending.is_empty() {
                continue;
            }
            let outcomes = self.visit(child, child_pending);
            for (slot, outcome) in slots.into_iter().zip(outcomes) {
                debug_assert_eq!(locals[slot].query, outcome.query);
                child_values[slot].push((child_label, outcome.values));
            }
        }

        // Per-query back half: bottom-up filter evaluation and vertex
        // invalidation.
        let mut outcomes = Vec::with_capacity(locals.len());
        for (slot, local) in locals.into_iter().enumerate() {
            let rt = &mut self.runtimes[local.query];
            let values =
                rt.compute_values(self.tree.text(node), &local.closure, &child_values[slot]);
            for &s in &local.mstates {
                if let Some(afa) = rt.mfa.nfa().state(s).afa {
                    let holds = values
                        .get(&(afa, rt.mfa.afa(afa).start()))
                        .copied()
                        .unwrap_or(false);
                    if !holds {
                        rt.cans[local.vertex_of[&s] as usize].valid = false;
                    }
                }
            }
            let init = local
                .entry_states
                .iter()
                .filter_map(|s| local.vertex_of.get(s).copied())
                .collect();
            outcomes.push(Outcome {
                query: local.query,
                values,
                init,
            });
        }
        outcomes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{evaluate, evaluate_with_index};
    use smoqe_automata::compile_query;
    use smoqe_xml::hospital::hospital_document_dtd;
    use smoqe_xml::XmlTreeBuilder;
    use smoqe_xpath::parse_path;

    /// A small document conforming to the hospital DTD.
    fn hospital_doc() -> XmlTree {
        let mut b = XmlTreeBuilder::new();
        let root = b.root("hospital");
        let dept = b.child(root, "department");
        b.child_with_text(dept, "name", "Cardiology");
        for (name, diag) in [
            ("Alice", "heart disease"),
            ("Bob", "flu"),
            ("Carol", "heart disease"),
        ] {
            let p = b.child(dept, "patient");
            b.child_with_text(p, "pname", name);
            let addr = b.child(p, "address");
            b.child_with_text(addr, "street", "s");
            b.child_with_text(addr, "city", "c");
            b.child_with_text(addr, "zip", "z");
            let v = b.child(p, "visit");
            b.child_with_text(v, "date", "2006-01-01");
            let t = b.child(v, "treatment");
            let m = b.child(t, "medication");
            b.child_with_text(m, "type", "tablet");
            b.child_with_text(m, "diagnosis", diag);
            let d = b.child(dept, "doctor");
            b.child_with_text(d, "dname", "Dr X");
            b.child_with_text(d, "specialty", "cardiology");
        }
        b.finish()
    }

    const QUERIES: &[&str] = &[
        "department/patient/pname",
        "//zip",
        "department/patient[visit/treatment/medication/diagnosis/text()='heart disease']",
        "department/doctor[specialty/text()='cardiology']/dname",
        "department/patient[not(visit)]",
        "//diagnosis",
    ];

    #[test]
    fn batch_matches_solo_runs_exactly() {
        let doc = hospital_doc();
        let mfas: Vec<_> = QUERIES
            .iter()
            .map(|q| compile_query(&parse_path(q).unwrap()))
            .collect();
        let batch_queries: Vec<BatchQuery> = mfas.iter().map(BatchQuery::new).collect();
        let batch = evaluate_batch(&doc, &batch_queries);
        assert_eq!(batch.results.len(), QUERIES.len());
        for (i, mfa) in mfas.iter().enumerate() {
            let solo = evaluate(&doc, mfa);
            assert_eq!(
                batch.results[i].answers, solo.answers,
                "answers differ on `{}`",
                QUERIES[i]
            );
            assert_eq!(
                batch.results[i].stats, solo.stats,
                "stats differ on `{}`",
                QUERIES[i]
            );
        }
    }

    #[test]
    fn batch_matches_solo_runs_with_indexes() {
        let doc = hospital_doc();
        let dtd = hospital_document_dtd();
        let mfas: Vec<_> = QUERIES
            .iter()
            .map(|q| compile_query(&parse_path(q).unwrap()))
            .collect();
        let indexes: Vec<_> = mfas
            .iter()
            .map(|m| ReachabilityIndex::new(m, &dtd, doc.labels()))
            .collect();
        let batch_queries: Vec<BatchQuery> = mfas
            .iter()
            .zip(&indexes)
            .map(|(m, i)| BatchQuery::with_index(m, i))
            .collect();
        let batch = evaluate_batch(&doc, &batch_queries);
        for (i, (mfa, index)) in mfas.iter().zip(&indexes).enumerate() {
            let solo = evaluate_with_index(&doc, mfa, index);
            assert_eq!(batch.results[i].answers, solo.answers, "on `{}`", QUERIES[i]);
            assert_eq!(batch.results[i].stats, solo.stats, "on `{}`", QUERIES[i]);
        }
    }

    #[test]
    fn shared_traversal_visits_fewer_nodes_than_sequential_sum() {
        let doc = hospital_doc();
        let mfas: Vec<_> = QUERIES
            .iter()
            .map(|q| compile_query(&parse_path(q).unwrap()))
            .collect();
        let batch_queries: Vec<BatchQuery> = mfas.iter().map(BatchQuery::new).collect();
        let batch = evaluate_batch(&doc, &batch_queries);
        let sequential: usize = mfas.iter().map(|m| evaluate(&doc, m).stats.nodes_visited).sum();
        assert_eq!(batch.stats.sequential_node_visits, sequential);
        assert!(
            batch.stats.nodes_visited < sequential,
            "batched {} visits should be fewer than sequential {}",
            batch.stats.nodes_visited,
            sequential
        );
        // The union of visit sets is at least as large as any single set.
        let max_single = mfas
            .iter()
            .map(|m| evaluate(&doc, m).stats.nodes_visited)
            .max()
            .unwrap();
        assert!(batch.stats.nodes_visited >= max_single);
        assert!(batch.stats.nodes_visited <= batch.stats.nodes_total);
        assert!(batch.stats.sharing_factor() > 1.0);
        assert_eq!(
            batch.stats.visits_saved(),
            sequential - batch.stats.nodes_visited
        );
    }

    #[test]
    fn mixed_indexed_and_plain_queries_in_one_batch() {
        let doc = hospital_doc();
        let dtd = hospital_document_dtd();
        let zip = compile_query(&parse_path("//zip").unwrap());
        let diag = compile_query(&parse_path("//diagnosis").unwrap());
        let index = ReachabilityIndex::new(&zip, &dtd, doc.labels());
        let batch = evaluate_batch(
            &doc,
            &[BatchQuery::with_index(&zip, &index), BatchQuery::new(&diag)],
        );
        assert_eq!(batch.results[0].answers, evaluate_with_index(&doc, &zip, &index).answers);
        assert_eq!(batch.results[1].answers, evaluate(&doc, &diag).answers);
        // The indexed query prunes for itself, but the plain //diagnosis
        // query keeps most of the document live, so the shared traversal
        // still visits those nodes.
        assert_eq!(
            batch.results[0].stats.nodes_visited,
            evaluate_with_index(&doc, &zip, &index).stats.nodes_visited
        );
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let doc = hospital_doc();
        let batch = evaluate_batch(&doc, &[]);
        assert!(batch.results.is_empty());
        assert_eq!(batch.stats.queries, 0);
        assert_eq!(batch.stats.nodes_visited, 0);
        assert_eq!(batch.stats.sequential_node_visits, 0);
        assert_eq!(batch.stats.sharing_factor(), 1.0);
    }

    #[test]
    fn duplicate_queries_share_the_whole_traversal() {
        let doc = hospital_doc();
        let mfa = compile_query(&parse_path("department/patient/pname").unwrap());
        let batch = evaluate_batch(&doc, &[BatchQuery::new(&mfa), BatchQuery::new(&mfa)]);
        let solo = evaluate(&doc, &mfa);
        for r in &batch.results {
            assert_eq!(r.answers, solo.answers);
            assert_eq!(r.stats, solo.stats);
        }
        // Identical pending sets → the union is one solo traversal.
        assert_eq!(batch.stats.nodes_visited, solo.stats.nodes_visited);
        assert_eq!(batch.stats.sequential_node_visits, 2 * solo.stats.nodes_visited);
    }

    #[test]
    fn batch_at_inner_context() {
        let doc = hospital_doc();
        let mfa = compile_query(&parse_path("patient/pname").unwrap());
        let dept = doc.children(doc.root())[0];
        let batch = evaluate_batch_at(&doc, dept, &[BatchQuery::new(&mfa)]);
        let solo = crate::engine::evaluate_at(&doc, dept, &mfa);
        assert_eq!(batch.results[0].answers, solo.answers);
        assert_eq!(batch.results[0].stats, solo.stats);
        assert_eq!(batch.stats.nodes_total, doc.subtree_size(dept));
    }
}
