//! Batched multi-query HyPE evaluation on the compiled execution IR.
//!
//! A production SMOQE deployment does not run one query per document
//! traversal: many concurrent callers pose (often different) queries against
//! the same document. This module drives **N compiled MFAs through a single
//! depth-first pass**: the pending selecting-NFA states and filter-state
//! requests are kept per query — as `u64`-word bitsets over the
//! [`CompiledMfa`] execution IR — and a subtree is descended into as soon as
//! *any* of the batched queries still has work there. Pruning therefore only
//! skips a subtree when **every** query agrees it is dead (its basic prune
//! and, when an index is supplied, its OptHyPE prune both fire).
//!
//! Every per-query artefact — the candidate-answer DAG `cans`, the
//! [`HypeStats`](crate::HypeStats), the answer set — is built exactly as the solo evaluator
//! would build it: whether a query participates in a child visit depends
//! only on that query's own state at the node, so its recursion tree, vertex
//! numbering and statistics are *identical* to a stand-alone run. The solo
//! entry points in [`crate::engine`] are in fact implemented as the 1-query
//! special case of this engine, the batched-vs-sequential integration
//! suite checks the equivalence query-by-query over the whole corpus, and
//! the `compiled_differential` suite pins answers and statistics to the
//! interpreted reference engines in [`crate::interpreted`].
//!
//! What batching buys is the traversal itself: a node shared by the pending
//! sets of k queries is visited once instead of k times, so the *physical*
//! visit count is the size of the union of the per-query visit sets
//! ([`BatchStats::nodes_visited`]) rather than their sum
//! ([`BatchStats::sequential_node_visits`]).
//!
//! Callers that evaluate the same query repeatedly should compile once —
//! [`CompiledMfa::new`], usually via the `smoqe` service layer's cache —
//! and use [`evaluate_batch_compiled`]; the [`evaluate_batch`] convenience
//! recompiles the IR on every call.

use std::sync::Arc;

use smoqe_automata::{CompiledMfa, Mfa};
use smoqe_xml::{NodeId, XmlTree};

use crate::engine::HypeResult;
use crate::index::ReachabilityIndex;
use crate::runtime::{HypeCore, QueryRuntime};

/// One query of a batch: a builder-representation MFA plus, optionally, its
/// OptHyPE(-C) reachability index. The execution IR is compiled on entry;
/// see [`CompiledBatchQuery`] for the compile-once form.
#[derive(Debug, Clone, Copy)]
pub struct BatchQuery<'a> {
    /// The compiled automaton.
    pub mfa: &'a Mfa,
    /// The DTD reachability index, when OptHyPE pruning is wanted for this
    /// query. Queries of one batch may mix indexed and plain evaluation.
    pub index: Option<&'a ReachabilityIndex>,
}

impl<'a> BatchQuery<'a> {
    /// A batch member evaluated with plain HyPE.
    pub fn new(mfa: &'a Mfa) -> Self {
        BatchQuery { mfa, index: None }
    }

    /// A batch member evaluated with OptHyPE(-C) pruning.
    pub fn with_index(mfa: &'a Mfa, index: &'a ReachabilityIndex) -> Self {
        BatchQuery {
            mfa,
            index: Some(index),
        }
    }

    /// Compiles the execution IR for this batch member.
    pub fn compile(&self) -> CompiledBatchQuery<'a> {
        CompiledBatchQuery {
            compiled: Arc::new(CompiledMfa::new(self.mfa)),
            index: self.index,
        }
    }
}

/// One query of a batch in compile-once form: a shared [`CompiledMfa`]
/// execution IR plus, optionally, its OptHyPE(-C) reachability index.
///
/// The IR is document-independent, so one `Arc<CompiledMfa>` serves any
/// number of evaluations over any documents (the `smoqe::QueryService`
/// caches it next to the rewritten query, keyed by the view and query
/// fingerprints).
#[derive(Debug, Clone)]
pub struct CompiledBatchQuery<'a> {
    /// The execution IR.
    pub compiled: Arc<CompiledMfa>,
    /// The DTD reachability index, when OptHyPE pruning is wanted.
    pub index: Option<&'a ReachabilityIndex>,
}

impl<'a> CompiledBatchQuery<'a> {
    /// A batch member evaluated with plain HyPE.
    pub fn new(compiled: Arc<CompiledMfa>) -> Self {
        CompiledBatchQuery {
            compiled,
            index: None,
        }
    }

    /// A batch member evaluated with OptHyPE(-C) pruning.
    pub fn with_index(compiled: Arc<CompiledMfa>, index: &'a ReachabilityIndex) -> Self {
        CompiledBatchQuery {
            compiled,
            index: Some(index),
        }
    }
}

/// Traversal statistics of one batched run, aggregated over all queries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Number of queries in the batch.
    pub queries: usize,
    /// Number of element nodes in the evaluated subtree.
    pub nodes_total: usize,
    /// Number of element nodes physically visited by the shared traversal
    /// (the size of the union of the per-query visit sets).
    pub nodes_visited: usize,
    /// Sum of the per-query visit counts — exactly the number of node visits
    /// N sequential solo runs would have performed.
    pub sequential_node_visits: usize,
}

impl BatchStats {
    /// Node visits saved relative to running every query on its own pass.
    pub fn visits_saved(&self) -> usize {
        self.sequential_node_visits.saturating_sub(self.nodes_visited)
    }

    /// How many sequential visits each physical visit amortises
    /// (`sequential / physical`, in `[1, N]` for non-empty batches).
    pub fn sharing_factor(&self) -> f64 {
        if self.nodes_visited == 0 {
            1.0
        } else {
            self.sequential_node_visits as f64 / self.nodes_visited as f64
        }
    }
}

/// The result of a batched run: one [`HypeResult`] per query, in input
/// order, plus the shared traversal statistics.
#[derive(Debug, Clone)]
pub struct BatchResult {
    /// Per-query answers and statistics, index-aligned with the input batch.
    pub results: Vec<HypeResult>,
    /// Aggregate statistics of the shared traversal.
    pub stats: BatchStats,
}

/// Evaluates every query of `queries` at the root of `tree` in one pass.
///
/// Results are index-aligned with `queries`, and each one is exactly what a
/// solo [`crate::evaluate`] run would have produced — answers *and*
/// [`HypeStats`](crate::HypeStats) — while the document is traversed only once:
///
/// ```
/// use smoqe_automata::compile_query;
/// use smoqe_hype::{evaluate_batch, BatchQuery};
/// use smoqe_xml::XmlTreeBuilder;
/// use smoqe_xpath::parse_path;
///
/// let mut b = XmlTreeBuilder::new();
/// let root = b.root("hospital");
/// let patient = b.child(root, "patient");
/// b.child_with_text(patient, "pname", "Alice");
/// let doc = b.finish();
///
/// let patients = compile_query(&parse_path("patient").unwrap());
/// let names = compile_query(&parse_path("patient/pname").unwrap());
/// let batch = evaluate_batch(&doc, &[BatchQuery::new(&patients), BatchQuery::new(&names)]);
///
/// assert_eq!(batch.results.len(), 2);
/// assert_eq!(batch.results[0].answers.len(), 1); // the <patient>
/// assert_eq!(batch.results[1].answers.len(), 1); // its <pname>
/// // The shared pass performs no more visits than N sequential runs would.
/// assert!(batch.stats.nodes_visited <= batch.stats.sequential_node_visits);
/// ```
pub fn evaluate_batch(tree: &XmlTree, queries: &[BatchQuery]) -> BatchResult {
    evaluate_batch_at(tree, tree.root(), queries)
}

/// Evaluates every query of `queries` at `context` in one pass, compiling
/// each builder MFA to its execution IR first. Repeated callers should
/// compile once and use [`evaluate_batch_compiled_at`].
pub fn evaluate_batch_at(tree: &XmlTree, context: NodeId, queries: &[BatchQuery]) -> BatchResult {
    let compiled: Vec<CompiledBatchQuery> = queries.iter().map(BatchQuery::compile).collect();
    evaluate_batch_compiled_at(tree, context, &compiled)
}

/// Evaluates every pre-compiled query at the root of `tree` in one pass.
pub fn evaluate_batch_compiled(tree: &XmlTree, queries: &[CompiledBatchQuery]) -> BatchResult {
    evaluate_batch_compiled_at(tree, tree.root(), queries)
}

/// Evaluates every pre-compiled query at `context` in one pass — the hot
/// entry point all front-ends reduce to.
pub fn evaluate_batch_compiled_at(
    tree: &XmlTree,
    context: NodeId,
    queries: &[CompiledBatchQuery],
) -> BatchResult {
    let nodes_total = tree.subtree_size(context);
    if queries.is_empty() {
        return BatchResult {
            results: Vec::new(),
            stats: BatchStats {
                queries: 0,
                nodes_total,
                nodes_visited: 0,
                sequential_node_visits: 0,
            },
        };
    }

    let runtimes = queries
        .iter()
        .map(|q| QueryRuntime::new(tree.labels(), Arc::clone(&q.compiled), q.index))
        .collect();
    let mut core = HypeCore::new(runtimes);
    walk(&mut core, tree, context);
    let (results, nodes_visited, sequential_node_visits) = core.into_results(nodes_total);
    BatchResult {
        results,
        stats: BatchStats {
            queries: queries.len(),
            nodes_total,
            nodes_visited,
            sequential_node_visits,
        },
    }
}

/// The tree driver of the shared core: open the node (the core decides per
/// query whether it has work, pruning exactly as a solo run would), descend
/// into the children only when some query kept the subtree alive, and close
/// bottom-up. Also drives each shard of a parallel run
/// ([`crate::parallel`]), whose cores are seeded with the context frame.
///
/// The traversal is iterative — an explicit `(node, next-child)` frame
/// stack — because document depth is adversarial input (deep `parent` or
/// `part` chains) and must not overflow the call stack. Open/close order is
/// identical to the natural recursion, so statistics are unchanged.
pub(crate) fn walk(core: &mut HypeCore, tree: &XmlTree, node: NodeId) {
    if !core.open(node, tree.label(node)) {
        return; // every query pruned the subtree: the moral "do not recurse"
    }
    let mut stack: Vec<(NodeId, usize)> = vec![(node, 0)];
    while let Some(&mut (open_node, ref mut next)) = stack.last_mut() {
        let children = tree.children(open_node);
        if *next < children.len() {
            let child = children[*next];
            *next += 1;
            if core.open(child, tree.label(child)) {
                stack.push((child, 0));
            }
        } else {
            core.close(tree.text(open_node));
            stack.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{evaluate, evaluate_with_index};
    use smoqe_automata::compile_query;
    use smoqe_xml::hospital::hospital_document_dtd;
    use smoqe_xml::XmlTreeBuilder;
    use smoqe_xpath::parse_path;

    /// A small document conforming to the hospital DTD.
    fn hospital_doc() -> XmlTree {
        let mut b = XmlTreeBuilder::new();
        let root = b.root("hospital");
        let dept = b.child(root, "department");
        b.child_with_text(dept, "name", "Cardiology");
        for (name, diag) in [
            ("Alice", "heart disease"),
            ("Bob", "flu"),
            ("Carol", "heart disease"),
        ] {
            let p = b.child(dept, "patient");
            b.child_with_text(p, "pname", name);
            let addr = b.child(p, "address");
            b.child_with_text(addr, "street", "s");
            b.child_with_text(addr, "city", "c");
            b.child_with_text(addr, "zip", "z");
            let v = b.child(p, "visit");
            b.child_with_text(v, "date", "2006-01-01");
            let t = b.child(v, "treatment");
            let m = b.child(t, "medication");
            b.child_with_text(m, "type", "tablet");
            b.child_with_text(m, "diagnosis", diag);
            let d = b.child(dept, "doctor");
            b.child_with_text(d, "dname", "Dr X");
            b.child_with_text(d, "specialty", "cardiology");
        }
        b.finish()
    }

    const QUERIES: &[&str] = &[
        "department/patient/pname",
        "//zip",
        "department/patient[visit/treatment/medication/diagnosis/text()='heart disease']",
        "department/doctor[specialty/text()='cardiology']/dname",
        "department/patient[not(visit)]",
        "//diagnosis",
    ];

    #[test]
    fn batch_matches_solo_runs_exactly() {
        let doc = hospital_doc();
        let mfas: Vec<_> = QUERIES
            .iter()
            .map(|q| compile_query(&parse_path(q).unwrap()))
            .collect();
        let batch_queries: Vec<BatchQuery> = mfas.iter().map(BatchQuery::new).collect();
        let batch = evaluate_batch(&doc, &batch_queries);
        assert_eq!(batch.results.len(), QUERIES.len());
        for (i, mfa) in mfas.iter().enumerate() {
            let solo = evaluate(&doc, mfa);
            assert_eq!(
                batch.results[i].answers, solo.answers,
                "answers differ on `{}`",
                QUERIES[i]
            );
            assert_eq!(
                batch.results[i].stats, solo.stats,
                "stats differ on `{}`",
                QUERIES[i]
            );
        }
    }

    #[test]
    fn batch_matches_solo_runs_with_indexes() {
        let doc = hospital_doc();
        let dtd = hospital_document_dtd();
        let mfas: Vec<_> = QUERIES
            .iter()
            .map(|q| compile_query(&parse_path(q).unwrap()))
            .collect();
        let indexes: Vec<_> = mfas
            .iter()
            .map(|m| ReachabilityIndex::new(m, &dtd, doc.labels()))
            .collect();
        let batch_queries: Vec<BatchQuery> = mfas
            .iter()
            .zip(&indexes)
            .map(|(m, i)| BatchQuery::with_index(m, i))
            .collect();
        let batch = evaluate_batch(&doc, &batch_queries);
        for (i, (mfa, index)) in mfas.iter().zip(&indexes).enumerate() {
            let solo = evaluate_with_index(&doc, mfa, index);
            assert_eq!(batch.results[i].answers, solo.answers, "on `{}`", QUERIES[i]);
            assert_eq!(batch.results[i].stats, solo.stats, "on `{}`", QUERIES[i]);
        }
    }

    #[test]
    fn shared_traversal_visits_fewer_nodes_than_sequential_sum() {
        let doc = hospital_doc();
        let mfas: Vec<_> = QUERIES
            .iter()
            .map(|q| compile_query(&parse_path(q).unwrap()))
            .collect();
        let batch_queries: Vec<BatchQuery> = mfas.iter().map(BatchQuery::new).collect();
        let batch = evaluate_batch(&doc, &batch_queries);
        let sequential: usize = mfas.iter().map(|m| evaluate(&doc, m).stats.nodes_visited).sum();
        assert_eq!(batch.stats.sequential_node_visits, sequential);
        assert!(
            batch.stats.nodes_visited < sequential,
            "batched {} visits should be fewer than sequential {}",
            batch.stats.nodes_visited,
            sequential
        );
        // The union of visit sets is at least as large as any single set.
        let max_single = mfas
            .iter()
            .map(|m| evaluate(&doc, m).stats.nodes_visited)
            .max()
            .unwrap();
        assert!(batch.stats.nodes_visited >= max_single);
        assert!(batch.stats.nodes_visited <= batch.stats.nodes_total);
        assert!(batch.stats.sharing_factor() > 1.0);
        assert_eq!(
            batch.stats.visits_saved(),
            sequential - batch.stats.nodes_visited
        );
    }

    #[test]
    fn mixed_indexed_and_plain_queries_in_one_batch() {
        let doc = hospital_doc();
        let dtd = hospital_document_dtd();
        let zip = compile_query(&parse_path("//zip").unwrap());
        let diag = compile_query(&parse_path("//diagnosis").unwrap());
        let index = ReachabilityIndex::new(&zip, &dtd, doc.labels());
        let batch = evaluate_batch(
            &doc,
            &[BatchQuery::with_index(&zip, &index), BatchQuery::new(&diag)],
        );
        assert_eq!(batch.results[0].answers, evaluate_with_index(&doc, &zip, &index).answers);
        assert_eq!(batch.results[1].answers, evaluate(&doc, &diag).answers);
        // The indexed query prunes for itself, but the plain //diagnosis
        // query keeps most of the document live, so the shared traversal
        // still visits those nodes.
        assert_eq!(
            batch.results[0].stats.nodes_visited,
            evaluate_with_index(&doc, &zip, &index).stats.nodes_visited
        );
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let doc = hospital_doc();
        let batch = evaluate_batch(&doc, &[]);
        assert!(batch.results.is_empty());
        assert_eq!(batch.stats.queries, 0);
        assert_eq!(batch.stats.nodes_visited, 0);
        assert_eq!(batch.stats.sequential_node_visits, 0);
        assert_eq!(batch.stats.sharing_factor(), 1.0);
    }

    #[test]
    fn duplicate_queries_share_the_whole_traversal() {
        let doc = hospital_doc();
        let mfa = compile_query(&parse_path("department/patient/pname").unwrap());
        let batch = evaluate_batch(&doc, &[BatchQuery::new(&mfa), BatchQuery::new(&mfa)]);
        let solo = evaluate(&doc, &mfa);
        for r in &batch.results {
            assert_eq!(r.answers, solo.answers);
            assert_eq!(r.stats, solo.stats);
        }
        // Identical pending sets → the union is one solo traversal.
        assert_eq!(batch.stats.nodes_visited, solo.stats.nodes_visited);
        assert_eq!(batch.stats.sequential_node_visits, 2 * solo.stats.nodes_visited);
    }

    #[test]
    fn batch_at_inner_context() {
        let doc = hospital_doc();
        let mfa = compile_query(&parse_path("patient/pname").unwrap());
        let dept = doc.children(doc.root())[0];
        let batch = evaluate_batch_at(&doc, dept, &[BatchQuery::new(&mfa)]);
        let solo = crate::engine::evaluate_at(&doc, dept, &mfa);
        assert_eq!(batch.results[0].answers, solo.answers);
        assert_eq!(batch.results[0].stats, solo.stats);
        assert_eq!(batch.stats.nodes_total, doc.subtree_size(dept));
    }
}
