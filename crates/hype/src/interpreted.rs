//! The interpreted reference engines: HyPE running directly on the builder
//! [`Mfa`].
//!
//! Before the execution-IR refactor these were *the* engines; they now
//! serve as the differential oracle for the compiled engines in
//! [`crate::batch`] and [`crate::stream`]: same traversal, same pruning
//! rules, same `cans` construction — but implemented over the builder
//! representation with `BTreeSet` request closures and per-node
//! `HashMap<(AfaId, AfaStateId), bool>` filter values. The corpus-wide
//! differential suites assert that the compiled engines reproduce these
//! engines' answers **and** [`HypeStats`] bit for bit, in solo, batched and
//! streaming modes; the `compiled_throughput` bench measures the speedup
//! of the IR against this baseline.
//!
//! Semantics are frozen: behavioural changes belong in the compiled
//! engines *and* here, or the differential suites lose their meaning.

use std::collections::{BTreeSet, HashMap};
use std::rc::Rc;

use smoqe_automata::{
    AfaId, AfaState, AfaStateId, FinalPredicate, LabelMap, Mfa, StateId, Transition,
};
use smoqe_xml::stream::{EventSource, XmlEvent};
use smoqe_xml::{LabelId, LabelInterner, NodeId, ParseError, XmlTree};

use crate::batch::{BatchQuery, BatchResult, BatchStats};
use crate::engine::{HypeResult, HypeStats};
use crate::index::ReachabilityIndex;
use crate::stream::{StreamResult, StreamStats};

/// Boolean filter variables `X(node, state)` computed at one node.
type AfaValues = HashMap<(AfaId, AfaStateId), bool>;

/// One vertex of a query's candidate-answer DAG `cans`.
#[derive(Debug)]
struct CansVertex {
    node: NodeId,
    is_final: bool,
    valid: bool,
    edges: Vec<u32>,
}

/// Phase 2 of HyPE: traverse `cans` from the initial vertices through valid
/// vertices only, collecting the nodes attached to final states.
fn collect_answers(cans: &[CansVertex], init_vertices: &[u32]) -> BTreeSet<NodeId> {
    let mut answers = BTreeSet::new();
    let mut seen = vec![false; cans.len()];
    let mut stack: Vec<u32> = init_vertices
        .iter()
        .filter(|&&v| cans[v as usize].valid)
        .copied()
        .collect();
    for &v in &stack {
        seen[v as usize] = true;
    }
    while let Some(v) = stack.pop() {
        let vertex = &cans[v as usize];
        if vertex.is_final {
            answers.insert(vertex.node);
        }
        for &next in &vertex.edges {
            if !seen[next as usize] && cans[next as usize].valid {
                seen[next as usize] = true;
                stack.push(next);
            }
        }
    }
    answers
}

/// Everything one query carries through an interpreted traversal.
struct QueryRuntime<'a> {
    mfa: &'a Mfa,
    label_map: LabelMap,
    index: Option<&'a ReachabilityIndex>,
    nfa_accept_below: HashMap<LabelId, Vec<bool>>,
    afa_true_below: HashMap<LabelId, Vec<Vec<bool>>>,
    cans: Vec<CansVertex>,
    stats: HypeStats,
}

impl<'a> QueryRuntime<'a> {
    fn new(doc_labels: &LabelInterner, query: &BatchQuery<'a>) -> Self {
        QueryRuntime {
            mfa: query.mfa,
            label_map: LabelMap::new(query.mfa, doc_labels),
            index: query.index,
            nfa_accept_below: HashMap::new(),
            afa_true_below: HashMap::new(),
            cans: Vec::new(),
            stats: HypeStats::default(),
        }
    }

    fn extend_labels(&mut self, doc_labels: &LabelInterner) {
        self.label_map.extend(self.mfa, doc_labels);
    }

    /// Closes a set of requested filter states under operator-state
    /// successors (AND/OR/NOT ε-moves stay on the same node). Successor
    /// lists are walked by reference — no per-state `Vec` clone.
    fn close_requests(
        &self,
        initial: BTreeSet<(AfaId, AfaStateId)>,
    ) -> BTreeSet<(AfaId, AfaStateId)> {
        let mut worklist: Vec<(AfaId, AfaStateId)> = initial.iter().copied().collect();
        let mut closure = initial;
        while let Some((afa, q)) = worklist.pop() {
            match self.mfa.afa(afa).state(q) {
                AfaState::And(v) | AfaState::Or(v) => {
                    for &s in v {
                        if closure.insert((afa, s)) {
                            worklist.push((afa, s));
                        }
                    }
                }
                AfaState::Not(x) => {
                    if closure.insert((afa, *x)) {
                        worklist.push((afa, *x));
                    }
                }
                AfaState::Trans(..) | AfaState::Final(_) => {}
            }
        }
        closure
    }

    // -- OptHyPE pruning -----------------------------------------------------

    fn can_skip_subtree(
        &mut self,
        child_label: LabelId,
        entry_states: &[StateId],
        requests: &[(AfaId, AfaStateId)],
    ) -> bool {
        let Some(index) = self.index else {
            return false;
        };
        if index.allowed_below(child_label).is_none() {
            return false;
        }
        if !self.nfa_accept_below.contains_key(&child_label) {
            let table = self.compute_nfa_accept_below(child_label);
            self.nfa_accept_below.insert(child_label, table);
        }
        let nfa_table = &self.nfa_accept_below[&child_label];
        let closure = self.mfa.nfa().eps_closure(entry_states);
        if closure.iter().any(|s| nfa_table[s.index()]) {
            return false;
        }
        if requests.is_empty() {
            return true;
        }
        if !self.afa_true_below.contains_key(&child_label) {
            let table = self.compute_afa_true_below(child_label);
            self.afa_true_below.insert(child_label, table);
        }
        let afa_table = &self.afa_true_below[&child_label];
        requests
            .iter()
            .all(|&(afa, q)| !afa_table[afa.index()][q.index()])
    }

    fn transition_allowed_below(&self, t: Transition, allowed: &[u64]) -> bool {
        match t {
            Transition::Any => true,
            Transition::Label(l) => {
                let bit = l as usize;
                allowed
                    .get(bit / 64)
                    .map(|w| w & (1 << (bit % 64)) != 0)
                    .unwrap_or(false)
            }
        }
    }

    fn compute_nfa_accept_below(&self, label: LabelId) -> Vec<bool> {
        let index = self.index.expect("called only with an index");
        let allowed = index
            .allowed_below(label)
            .expect("caller checked the label is known")
            .to_vec();
        let nfa = self.mfa.nfa();
        let mut can = vec![false; nfa.len()];
        for (id, state) in nfa.states() {
            if state.is_final {
                can[id.index()] = true;
            }
        }
        loop {
            let mut changed = false;
            for (id, state) in nfa.states() {
                if can[id.index()] {
                    continue;
                }
                let reach = state.eps.iter().any(|e| can[e.index()])
                    || state.trans.iter().any(|&(t, tgt)| {
                        self.transition_allowed_below(t, &allowed) && can[tgt.index()]
                    });
                if reach {
                    can[id.index()] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        can
    }

    fn compute_afa_true_below(&self, label: LabelId) -> Vec<Vec<bool>> {
        let index = self.index.expect("called only with an index");
        let allowed = index
            .allowed_below(label)
            .expect("caller checked the label is known")
            .to_vec();
        let mut out = Vec::with_capacity(self.mfa.afas().len());
        for afa in self.mfa.afas() {
            let mut maybe = vec![false; afa.len()];
            for (id, state) in afa.states() {
                if matches!(state, AfaState::Final(_) | AfaState::Not(_)) {
                    maybe[id.index()] = true;
                }
            }
            loop {
                let mut changed = false;
                for (id, state) in afa.states() {
                    if maybe[id.index()] {
                        continue;
                    }
                    let reach = match state {
                        AfaState::And(v) | AfaState::Or(v) => v.iter().any(|s| maybe[s.index()]),
                        AfaState::Not(_) | AfaState::Final(_) => true,
                        AfaState::Trans(t, tgt) => {
                            self.transition_allowed_below(*t, &allowed) && maybe[tgt.index()]
                        }
                    };
                    if reach {
                        maybe[id.index()] = true;
                        changed = true;
                    }
                }
                if !changed {
                    break;
                }
            }
            out.push(maybe);
        }
        out
    }

    // -- Bottom-up filter evaluation -----------------------------------------

    fn compute_values(
        &mut self,
        node_text: Option<&str>,
        closure: &BTreeSet<(AfaId, AfaStateId)>,
        child_values: &[(LabelId, AfaValues)],
    ) -> AfaValues {
        let mut memo: AfaValues = HashMap::with_capacity(closure.len());
        for &(afa, q) in closure {
            let mut in_progress = BTreeSet::new();
            self.value_of(node_text, afa, q, child_values, &mut memo, &mut in_progress);
        }
        memo
    }

    fn value_of(
        &mut self,
        node_text: Option<&str>,
        afa: AfaId,
        q: AfaStateId,
        child_values: &[(LabelId, AfaValues)],
        memo: &mut AfaValues,
        in_progress: &mut BTreeSet<(AfaId, AfaStateId)>,
    ) -> bool {
        if let Some(&v) = memo.get(&(afa, q)) {
            return v;
        }
        if !in_progress.insert((afa, q)) {
            // ε-cycle among operator states: the least fix-point is false.
            return false;
        }
        self.stats.afa_values_computed += 1;
        // `mfa` is a shared borrow independent of `self`, so the state can
        // be matched in place (no per-visit `AfaState` clone) while `self`
        // recurses mutably for the statistics counter.
        let mfa: &Mfa = self.mfa;
        let value = match mfa.afa(afa).state(q) {
            AfaState::Final(pred) => match pred {
                FinalPredicate::True => true,
                FinalPredicate::False => false,
                FinalPredicate::TextEq(value) => node_text == Some(value.as_str()),
            },
            AfaState::Not(x) => {
                !self.value_of(node_text, afa, *x, child_values, memo, in_progress)
            }
            AfaState::And(children) => children
                .iter()
                .all(|&c| self.value_of(node_text, afa, c, child_values, memo, in_progress)),
            AfaState::Or(children) => children
                .iter()
                .any(|&c| self.value_of(node_text, afa, c, child_values, memo, in_progress)),
            AfaState::Trans(t, tgt) => child_values.iter().any(|(child_label, values)| {
                self.label_map.matches(*t, *child_label)
                    && values.get(&(afa, *tgt)).copied().unwrap_or(false)
            }),
        };
        in_progress.remove(&(afa, q));
        memo.insert((afa, q), value);
        value
    }
}

// ---------------------------------------------------------------------------
// The interpreted tree traversal (the pre-IR batch engine).
// ---------------------------------------------------------------------------

struct Pending {
    query: usize,
    entry_states: Vec<StateId>,
    requests: Vec<(AfaId, AfaStateId)>,
    parent_vertices: Rc<Vec<(StateId, u32)>>,
}

struct Outcome {
    query: usize,
    values: AfaValues,
    init: Vec<u32>,
}

struct Local {
    query: usize,
    entry_states: Vec<StateId>,
    mstates: Vec<StateId>,
    vertex_of: HashMap<StateId, u32>,
    closure: BTreeSet<(AfaId, AfaStateId)>,
    my_vertices: Rc<Vec<(StateId, u32)>>,
}

/// One open node of the iterative traversal: the per-query state built on
/// entry, the child values accumulated as children complete, and the slots
/// of the parent frame this frame's outcomes are delivered to.
struct VisitFrame {
    node: NodeId,
    locals: Vec<Local>,
    child_values: Vec<Vec<(LabelId, AfaValues)>>,
    children: Vec<NodeId>,
    next_child: usize,
    parent_slots: Vec<usize>,
}

struct BatchEngine<'a> {
    tree: &'a XmlTree,
    runtimes: Vec<QueryRuntime<'a>>,
    physical_visits: usize,
}

impl BatchEngine<'_> {
    /// The interpreted traversal, driven by an explicit frame stack:
    /// document depth is adversarial input and must not overflow the call
    /// stack. Enter/compute order is exactly that of the natural recursion
    /// (node entered, children left to right, values computed bottom-up),
    /// so every statistic is unchanged.
    fn visit(&mut self, node: NodeId, pending: Vec<Pending>) -> Vec<Outcome> {
        let root_frame = self.enter(node, pending, Vec::new());
        let mut stack: Vec<VisitFrame> = vec![root_frame];
        loop {
            let top = stack.last_mut().expect("non-empty until the root closes");
            if top.next_child < top.children.len() {
                let child = top.children[top.next_child];
                top.next_child += 1;
                let child_label = self.tree.label(child);
                let mut child_pending: Vec<Pending> = Vec::new();
                let mut slots: Vec<usize> = Vec::new();
                for (slot, local) in top.locals.iter().enumerate() {
                    let rt = &mut self.runtimes[local.query];
                    let nfa = rt.mfa.nfa();
                    let mut entry_c: Vec<StateId> = Vec::new();
                    for &s in &local.mstates {
                        for &(t, tgt) in &nfa.state(s).trans {
                            if rt.label_map.matches(t, child_label) && !entry_c.contains(&tgt) {
                                entry_c.push(tgt);
                            }
                        }
                    }
                    let mut requests_c: Vec<(AfaId, AfaStateId)> = Vec::new();
                    for &(afa, q) in &local.closure {
                        if let AfaState::Trans(t, tgt) = rt.mfa.afa(afa).state(q) {
                            if rt.label_map.matches(*t, child_label)
                                && !requests_c.contains(&(afa, *tgt))
                            {
                                requests_c.push((afa, *tgt));
                            }
                        }
                    }
                    if entry_c.is_empty() && requests_c.is_empty() {
                        continue;
                    }
                    if rt.can_skip_subtree(child_label, &entry_c, &requests_c) {
                        continue;
                    }
                    child_pending.push(Pending {
                        query: local.query,
                        entry_states: entry_c,
                        requests: requests_c,
                        parent_vertices: Rc::clone(&local.my_vertices),
                    });
                    slots.push(slot);
                }
                if child_pending.is_empty() {
                    continue;
                }
                let frame = self.enter(child, child_pending, slots);
                stack.push(frame);
            } else {
                let frame = stack.pop().expect("just inspected");
                let child_label = self.tree.label(frame.node);
                let outcomes = self.close(frame.node, frame.locals, &frame.child_values);
                match stack.last_mut() {
                    None => return outcomes,
                    Some(parent) => {
                        for (slot, outcome) in
                            frame.parent_slots.iter().copied().zip(outcomes)
                        {
                            debug_assert_eq!(parent.locals[slot].query, outcome.query);
                            parent.child_values[slot].push((child_label, outcome.values));
                        }
                    }
                }
            }
        }
    }

    /// The entry half of a node visit: materialize the per-query CANS
    /// vertices, edges from the parent frame, and the AFA request closure.
    fn enter(&mut self, node: NodeId, pending: Vec<Pending>, parent_slots: Vec<usize>) -> VisitFrame {
        self.physical_visits += 1;
        let node_label = self.tree.label(node);

        let mut locals: Vec<Local> = Vec::with_capacity(pending.len());
        for p in pending {
            let rt = &mut self.runtimes[p.query];
            rt.stats.nodes_visited += 1;
            let nfa = rt.mfa.nfa();
            let mstates = nfa.eps_closure(&p.entry_states);

            let mut vertex_of: HashMap<StateId, u32> = HashMap::with_capacity(mstates.len());
            for &s in &mstates {
                let idx = rt.cans.len() as u32;
                rt.cans.push(CansVertex {
                    node,
                    is_final: nfa.state(s).is_final,
                    valid: true,
                    edges: Vec::new(),
                });
                vertex_of.insert(s, idx);
            }
            for &s in &mstates {
                let from = vertex_of[&s];
                for &t in &nfa.state(s).eps {
                    if let Some(&to) = vertex_of.get(&t) {
                        rt.cans[from as usize].edges.push(to);
                    }
                }
            }
            for &(sp, vp) in p.parent_vertices.iter() {
                for &(t, tgt) in &nfa.state(sp).trans {
                    if rt.label_map.matches(t, node_label) {
                        if let Some(&to) = vertex_of.get(&tgt) {
                            rt.cans[vp as usize].edges.push(to);
                        }
                    }
                }
            }

            let mut request_set: BTreeSet<(AfaId, AfaStateId)> = p.requests.into_iter().collect();
            for &s in &mstates {
                if let Some(afa) = nfa.state(s).afa {
                    request_set.insert((afa, rt.mfa.afa(afa).start()));
                }
            }
            let closure = rt.close_requests(request_set);

            let my_vertices: Rc<Vec<(StateId, u32)>> =
                Rc::new(mstates.iter().map(|&s| (s, vertex_of[&s])).collect());
            locals.push(Local {
                query: p.query,
                entry_states: p.entry_states,
                mstates,
                vertex_of,
                closure,
                my_vertices,
            });
        }

        let children: Vec<NodeId> = self.tree.children(node).to_vec();
        let child_values: Vec<Vec<(LabelId, AfaValues)>> = vec![Vec::new(); locals.len()];
        VisitFrame {
            node,
            locals,
            child_values,
            children,
            next_child: 0,
            parent_slots,
        }
    }

    /// The exit half of a node visit: bottom-up AFA value computation and
    /// CANS vertex invalidation, once every child outcome is in.
    fn close(
        &mut self,
        node: NodeId,
        locals: Vec<Local>,
        child_values: &[Vec<(LabelId, AfaValues)>],
    ) -> Vec<Outcome> {
        let mut outcomes = Vec::with_capacity(locals.len());
        for (slot, local) in locals.into_iter().enumerate() {
            let rt = &mut self.runtimes[local.query];
            let values =
                rt.compute_values(self.tree.text(node), &local.closure, &child_values[slot]);
            for &s in &local.mstates {
                if let Some(afa) = rt.mfa.nfa().state(s).afa {
                    let holds = values
                        .get(&(afa, rt.mfa.afa(afa).start()))
                        .copied()
                        .unwrap_or(false);
                    if !holds {
                        rt.cans[local.vertex_of[&s] as usize].valid = false;
                    }
                }
            }
            let init = local
                .entry_states
                .iter()
                .filter_map(|s| local.vertex_of.get(s).copied())
                .collect();
            outcomes.push(Outcome {
                query: local.query,
                values,
                init,
            });
        }
        outcomes
    }
}

/// Interpreted equivalent of [`crate::evaluate_batch_at`].
pub fn evaluate_batch_at(tree: &XmlTree, context: NodeId, queries: &[BatchQuery]) -> BatchResult {
    let nodes_total = tree.subtree_size(context);
    if queries.is_empty() {
        return BatchResult {
            results: Vec::new(),
            stats: BatchStats {
                queries: 0,
                nodes_total,
                nodes_visited: 0,
                sequential_node_visits: 0,
            },
        };
    }

    let mut engine = BatchEngine {
        tree,
        runtimes: queries
            .iter()
            .map(|q| QueryRuntime::new(tree.labels(), q))
            .collect(),
        physical_visits: 0,
    };
    for rt in &mut engine.runtimes {
        rt.stats.nodes_total = nodes_total;
    }

    let pending = queries
        .iter()
        .enumerate()
        .map(|(query, q)| Pending {
            query,
            entry_states: vec![q.mfa.nfa().start()],
            requests: Vec::new(),
            parent_vertices: Rc::new(Vec::new()),
        })
        .collect();
    let outcomes = engine.visit(context, pending);

    let mut init_of: Vec<Vec<u32>> = vec![Vec::new(); queries.len()];
    for outcome in outcomes {
        init_of[outcome.query] = outcome.init;
    }

    let mut results = Vec::with_capacity(queries.len());
    let mut sequential_node_visits = 0;
    for (query, rt) in engine.runtimes.into_iter().enumerate() {
        let answers = collect_answers(&rt.cans, &init_of[query]);
        let mut stats = rt.stats;
        stats.cans_vertices = rt.cans.len();
        stats.cans_edges = rt.cans.iter().map(|v| v.edges.len()).sum();
        sequential_node_visits += stats.nodes_visited;
        results.push(HypeResult { answers, stats });
    }
    BatchResult {
        results,
        stats: BatchStats {
            queries: queries.len(),
            nodes_total,
            nodes_visited: engine.physical_visits,
            sequential_node_visits,
        },
    }
}

/// Interpreted equivalent of [`crate::evaluate_batch`].
pub fn evaluate_batch(tree: &XmlTree, queries: &[BatchQuery]) -> BatchResult {
    evaluate_batch_at(tree, tree.root(), queries)
}

/// Interpreted equivalent of [`crate::evaluate_at_with`].
pub fn evaluate_at_with(
    tree: &XmlTree,
    context: NodeId,
    mfa: &Mfa,
    index: Option<&ReachabilityIndex>,
) -> HypeResult {
    let mut batch = evaluate_batch_at(tree, context, &[BatchQuery { mfa, index }]);
    batch.results.pop().expect("one result per batched query")
}

/// Interpreted equivalent of [`crate::evaluate`].
pub fn evaluate(tree: &XmlTree, mfa: &Mfa) -> HypeResult {
    evaluate_at_with(tree, tree.root(), mfa, None)
}

// ---------------------------------------------------------------------------
// The interpreted stream machine (the pre-IR StreamHype).
// ---------------------------------------------------------------------------

struct StreamLocal {
    query: usize,
    parent_slot: Option<usize>,
    entry_states: Vec<StateId>,
    mstates: Vec<StateId>,
    vertex_of: HashMap<StateId, u32>,
    closure: BTreeSet<(AfaId, AfaStateId)>,
    my_vertices: Rc<Vec<(StateId, u32)>>,
    child_values: Vec<(LabelId, AfaValues)>,
}

struct Frame {
    label: LabelId,
    text: Option<Box<str>>,
    locals: Vec<StreamLocal>,
}

struct PendingWork {
    query: usize,
    parent_slot: Option<usize>,
    entry_states: Vec<StateId>,
    requests: Vec<(AfaId, AfaStateId)>,
    parent_vertices: Rc<Vec<(StateId, u32)>>,
}

struct StreamMachine<'a> {
    runtimes: Vec<QueryRuntime<'a>>,
    labels: LabelInterner,
    known_labels: usize,
    frames: Vec<Frame>,
    skip_depth: usize,
    depth: usize,
    root_done: bool,
    next_preorder: u32,
    init_of: Vec<Vec<u32>>,
    events: usize,
    nodes_total: usize,
    physical_visits: usize,
    peak_depth: usize,
    peak_frames: usize,
}

impl<'a> StreamMachine<'a> {
    fn new(queries: &[BatchQuery<'a>], labels: LabelInterner) -> Self {
        let runtimes: Vec<QueryRuntime> =
            queries.iter().map(|q| QueryRuntime::new(&labels, q)).collect();
        StreamMachine {
            known_labels: labels.len(),
            init_of: vec![Vec::new(); runtimes.len()],
            runtimes,
            labels,
            frames: Vec::new(),
            skip_depth: 0,
            depth: 0,
            root_done: false,
            next_preorder: 0,
            events: 0,
            nodes_total: 0,
            physical_visits: 0,
            peak_depth: 0,
            peak_frames: 0,
        }
    }

    fn open(&mut self, name: &str) {
        assert!(!self.root_done, "open() after the document root closed");
        self.events += 1;
        self.nodes_total += 1;
        self.next_preorder += 1;
        let node = NodeId(self.next_preorder - 1);
        self.depth += 1;
        self.peak_depth = self.peak_depth.max(self.depth);
        if self.skip_depth > 0 {
            self.skip_depth += 1;
            return;
        }

        let label = self.labels.intern(name);
        if self.labels.len() > self.known_labels {
            self.known_labels = self.labels.len();
            for rt in &mut self.runtimes {
                rt.extend_labels(&self.labels);
            }
        }

        let mut pending: Vec<PendingWork> = Vec::new();
        if let Some(parent) = self.frames.last() {
            for (parent_slot, local) in parent.locals.iter().enumerate() {
                let rt = &mut self.runtimes[local.query];
                let nfa = rt.mfa.nfa();
                let mut entry_c: Vec<StateId> = Vec::new();
                for &s in &local.mstates {
                    for &(t, tgt) in &nfa.state(s).trans {
                        if rt.label_map.matches(t, label) && !entry_c.contains(&tgt) {
                            entry_c.push(tgt);
                        }
                    }
                }
                let mut requests_c: Vec<(AfaId, AfaStateId)> = Vec::new();
                for &(afa, q) in &local.closure {
                    if let AfaState::Trans(t, tgt) = rt.mfa.afa(afa).state(q) {
                        if rt.label_map.matches(*t, label) && !requests_c.contains(&(afa, *tgt)) {
                            requests_c.push((afa, *tgt));
                        }
                    }
                }
                if entry_c.is_empty() && requests_c.is_empty() {
                    continue;
                }
                if rt.can_skip_subtree(label, &entry_c, &requests_c) {
                    continue;
                }
                pending.push(PendingWork {
                    query: local.query,
                    parent_slot: Some(parent_slot),
                    entry_states: entry_c,
                    requests: requests_c,
                    parent_vertices: Rc::clone(&local.my_vertices),
                });
            }
        } else {
            for (query, rt) in self.runtimes.iter().enumerate() {
                pending.push(PendingWork {
                    query,
                    parent_slot: None,
                    entry_states: vec![rt.mfa.nfa().start()],
                    requests: Vec::new(),
                    parent_vertices: Rc::new(Vec::new()),
                });
            }
        }

        if pending.is_empty() {
            self.skip_depth = 1;
            return;
        }
        self.physical_visits += 1;

        let mut locals: Vec<StreamLocal> = Vec::with_capacity(pending.len());
        for work in pending {
            let rt = &mut self.runtimes[work.query];
            rt.stats.nodes_visited += 1;
            let nfa = rt.mfa.nfa();
            let mstates = nfa.eps_closure(&work.entry_states);

            let mut vertex_of = HashMap::with_capacity(mstates.len());
            for &s in &mstates {
                let idx = rt.cans.len() as u32;
                rt.cans.push(CansVertex {
                    node,
                    is_final: nfa.state(s).is_final,
                    valid: true,
                    edges: Vec::new(),
                });
                vertex_of.insert(s, idx);
            }
            for &s in &mstates {
                let from = vertex_of[&s];
                for &t in &nfa.state(s).eps {
                    if let Some(&to) = vertex_of.get(&t) {
                        rt.cans[from as usize].edges.push(to);
                    }
                }
            }
            for &(sp, vp) in work.parent_vertices.iter() {
                for &(t, tgt) in &nfa.state(sp).trans {
                    if rt.label_map.matches(t, label) {
                        if let Some(&to) = vertex_of.get(&tgt) {
                            rt.cans[vp as usize].edges.push(to);
                        }
                    }
                }
            }

            let mut request_set: BTreeSet<(AfaId, AfaStateId)> =
                work.requests.into_iter().collect();
            for &s in &mstates {
                if let Some(afa) = nfa.state(s).afa {
                    request_set.insert((afa, rt.mfa.afa(afa).start()));
                }
            }
            let closure = rt.close_requests(request_set);

            let my_vertices: Rc<Vec<(StateId, u32)>> =
                Rc::new(mstates.iter().map(|&s| (s, vertex_of[&s])).collect());
            locals.push(StreamLocal {
                query: work.query,
                parent_slot: work.parent_slot,
                entry_states: work.entry_states,
                mstates,
                vertex_of,
                closure,
                my_vertices,
                child_values: Vec::new(),
            });
        }

        self.frames.push(Frame {
            label,
            text: None,
            locals,
        });
        self.peak_frames = self.peak_frames.max(self.frames.len());
    }

    fn text(&mut self, text: &str) {
        self.events += 1;
        if self.skip_depth > 0 {
            return;
        }
        if let Some(frame) = self.frames.last_mut() {
            frame.text = Some(text.into());
        }
    }

    fn close(&mut self) {
        self.events += 1;
        assert!(self.depth > 0, "close() with no open element");
        self.depth -= 1;
        if self.skip_depth > 0 {
            self.skip_depth -= 1;
            return;
        }
        let frame = self.frames.pop().expect("a work frame exists when not skipping");
        for local in frame.locals {
            let rt = &mut self.runtimes[local.query];
            let values =
                rt.compute_values(frame.text.as_deref(), &local.closure, &local.child_values);
            for &s in &local.mstates {
                if let Some(afa) = rt.mfa.nfa().state(s).afa {
                    let holds = values
                        .get(&(afa, rt.mfa.afa(afa).start()))
                        .copied()
                        .unwrap_or(false);
                    if !holds {
                        rt.cans[local.vertex_of[&s] as usize].valid = false;
                    }
                }
            }
            match local.parent_slot {
                Some(parent_slot) => {
                    let parent = self.frames.last_mut().expect("non-root frame has a parent");
                    parent.locals[parent_slot]
                        .child_values
                        .push((frame.label, values));
                }
                None => {
                    self.init_of[local.query] = local
                        .entry_states
                        .iter()
                        .filter_map(|s| local.vertex_of.get(s).copied())
                        .collect();
                }
            }
        }
        if self.depth == 0 {
            self.root_done = true;
        }
    }

    fn finish(self) -> StreamResult {
        assert!(
            self.depth == 0 && self.frames.is_empty(),
            "finish() with {} unbalanced open element(s)",
            self.depth
        );
        let queries = self.runtimes.len();
        let mut results = Vec::with_capacity(queries);
        let mut sequential_node_visits = 0;
        for (query, rt) in self.runtimes.into_iter().enumerate() {
            let answers = collect_answers(&rt.cans, &self.init_of[query]);
            let mut stats = rt.stats;
            stats.nodes_total = self.nodes_total;
            stats.cans_vertices = rt.cans.len();
            stats.cans_edges = rt.cans.iter().map(|v| v.edges.len()).sum();
            sequential_node_visits += stats.nodes_visited;
            results.push(HypeResult { answers, stats });
        }
        StreamResult {
            results,
            stats: StreamStats {
                queries,
                events: self.events,
                nodes_total: self.nodes_total,
                nodes_visited: self.physical_visits,
                sequential_node_visits,
                peak_depth: self.peak_depth,
                peak_frames: self.peak_frames,
            },
        }
    }
}

/// Interpreted equivalent of [`crate::evaluate_stream_batch`] with a
/// pre-seeded label interner (required when any query carries an index).
pub fn evaluate_stream_batch_with_interner(
    source: &mut impl EventSource,
    queries: &[BatchQuery],
    labels: LabelInterner,
) -> Result<StreamResult, ParseError> {
    let mut machine = StreamMachine::new(queries, labels);
    while let Some(event) = source.next_event()? {
        match event {
            XmlEvent::Open(name) => machine.open(name),
            XmlEvent::Text(text) => machine.text(text),
            XmlEvent::Close => machine.close(),
        }
    }
    Ok(machine.finish())
}

/// Interpreted equivalent of [`crate::evaluate_stream_batch`].
pub fn evaluate_stream_batch(
    source: &mut impl EventSource,
    queries: &[BatchQuery],
) -> Result<StreamResult, ParseError> {
    evaluate_stream_batch_with_interner(source, queries, LabelInterner::new())
}

/// Interpreted equivalent of [`crate::evaluate_stream`].
pub fn evaluate_stream(
    source: &mut impl EventSource,
    mfa: &Mfa,
) -> Result<(HypeResult, StreamStats), ParseError> {
    let mut out = evaluate_stream_batch(source, &[BatchQuery::new(mfa)])?;
    let result = out.results.pop().expect("one result per query");
    Ok((result, out.stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use smoqe_automata::{compile_query, evaluate_mfa_at};
    use smoqe_xml::XmlTreeBuilder;
    use smoqe_xpath::parse_path;

    #[test]
    fn interpreted_engine_matches_the_naive_oracle() {
        let mut b = XmlTreeBuilder::new();
        let root = b.root("hospital");
        let p = b.child(root, "patient");
        let r = b.child(p, "record");
        b.child_with_text(r, "diagnosis", "heart disease");
        let doc = b.finish();
        for query in [
            "patient",
            "patient/record/diagnosis",
            "patient[record/diagnosis/text()='heart disease']",
            "patient[not(record)]",
        ] {
            let mfa = compile_query(&parse_path(query).unwrap());
            let expected = evaluate_mfa_at(&doc, doc.root(), &mfa);
            assert_eq!(evaluate(&doc, &mfa).answers, expected, "on `{query}`");
        }
    }
}
