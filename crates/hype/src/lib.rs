//! # smoqe-hype
//!
//! **HyPE** (Hybrid Pass Evaluation, Section 6 of the paper): evaluation of
//! MFAs — and therefore of regular XPath queries and of rewritten queries
//! over views — in a **single top-down pass** over the document tree plus a
//! single pass over a small auxiliary structure.
//!
//! During the depth-first traversal the algorithm simultaneously:
//!
//! * runs the selecting NFA top-down (`mstates`), pruning subtrees that no
//!   automaton state can make progress in,
//! * evaluates the AFAs (filters) *bottom-up on the same pass* (`fstates↓`
//!   requests flowing down, Boolean values flowing back up),
//! * records candidate answers in a DAG (`cans`) whose vertices are
//!   `(node, state)` pairs; vertices whose AFA turned out false are marked
//!   invalid, and a final traversal of `cans` from the initial vertices
//!   yields exactly the answer set.
//!
//! The complexity is `O(|T|·|M|)` time and space (Theorem 6.1); together
//! with the rewriting algorithm this gives linear data complexity for
//! answering queries on virtual views (Theorem 6.2).
//!
//! Two optimised variants are provided, mirroring the paper's **OptHyPE**
//! and **OptHyPE-C**: both consult a DTD-derived [`ReachabilityIndex`]
//! telling which labels can occur below an element of a given type, letting
//! the evaluator skip subtrees in which neither the NFA nor any pending AFA
//! can ever fire another transition; the `-C` variant stores the index
//! compressed (deduplicated rows), trading a little lookup indirection for
//! memory.
//!
//! For serving many concurrent queries over the same document, the
//! [`batch`] module drives N compiled MFAs through **one** shared pass
//! ([`evaluate_batch`]): nodes pending for several queries are visited once,
//! a subtree is skipped only when every query agrees it is dead, and each
//! query still receives exactly the answers and [`HypeStats`] a solo run
//! would produce. The solo entry points are the 1-query special case of the
//! batched engine.
//!
//! When a single document is large and latency matters, the [`parallel`]
//! module spreads one (or one batch of) compiled evaluation across a pool
//! of scoped threads: the top-level subtrees under the evaluation context
//! are sharded over `min(threads, subtrees)` workers ([`evaluate_parallel`],
//! [`evaluate_batch_parallel`]), each running the unchanged sequential
//! per-node logic with private scratch, and the per-shard artefacts are
//! merged deterministically — answers in pre-order index order, statistics
//! as exact sums — so the results are **bit-identical to the sequential
//! engines** at every thread budget (a guarantee the
//! `parallel_differential` suite enforces).
//!
//! When the workload is *many documents* rather than one big one, the
//! [`corpus`] module routes a batch of (document, query) pairs across the
//! same scoped worker pool — one pair per work item, each running the
//! unchanged sequential engine ([`evaluate_corpus_parallel`]) — which
//! sidesteps the shard-skew cap of within-document sharding entirely while
//! keeping every answer and per-pair [`HypeStats`] bit-identical to a
//! sequential loop ([`evaluate_corpus`]).
//!
//! Finally, the [`stream`] module removes the remaining memory dependency
//! on the document: [`StreamHype`] is a stack-machine port of the same pass
//! driven by the `Open`/`Text`/`Close` events of `smoqe_xml::stream`,
//! evaluating documents that are never materialized as trees — larger than
//! RAM, network-fed, or filtered on the fly — in `O(depth · |M|)` working
//! memory, with answers and statistics identical to the tree engine's. The
//! per-node math all three entry points share lives in one internal
//! `runtime` module, so the backends cannot drift apart.
//!
//! ## Compile once, run hot
//!
//! Every engine runs on the [`CompiledMfa`] **execution IR** of
//! `smoqe_automata::compiled` rather than interpreting the builder
//! `Mfa`: pending sets and filter values are `u64`-word bitsets, label
//! matching is one table column read, and ε-/operator-closures are
//! precompiled rows. The convenience entry points taking an `&Mfa` compile
//! the IR per call; the `*_compiled` variants ([`evaluate_compiled`],
//! [`evaluate_batch_compiled`], [`StreamHype::from_compiled`]) accept a
//! shared `Arc<CompiledMfa>` so the compile cost is paid once per query —
//! the `smoqe` service layer caches the IR next to the rewritten query.
//! The pre-IR engines survive unchanged in [`interpreted`] as the
//! reference implementation: the differential suites assert that the
//! compiled engines reproduce their answers and [`HypeStats`] bit for bit,
//! and the `compiled_throughput` bench measures the speedup against them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod corpus;
pub mod engine;
pub mod incremental;
pub mod index;
pub mod interpreted;
pub mod parallel;
mod runtime;
pub mod stream;

pub use batch::{
    evaluate_batch, evaluate_batch_at, evaluate_batch_compiled, evaluate_batch_compiled_at,
    BatchQuery, BatchResult, BatchStats, CompiledBatchQuery,
};
pub use corpus::{evaluate_corpus, evaluate_corpus_parallel, CorpusTask};
pub use incremental::{IncrementalEvaluator, IncrementalQuery};
pub use parallel::{
    evaluate_batch_parallel, evaluate_batch_parallel_at, evaluate_parallel,
    evaluate_parallel_at_with,
};
pub use engine::{
    evaluate, evaluate_at, evaluate_at_with, evaluate_compiled, evaluate_compiled_at_with,
    evaluate_with_index, HypeResult, HypeStats,
};
pub use index::ReachabilityIndex;
pub use smoqe_automata::CompiledMfa;
pub use stream::{evaluate_stream, evaluate_stream_batch, StreamHype, StreamResult, StreamStats};
