//! Parallel sharded HyPE evaluation: the batched compiled engine spread
//! across a pool of scoped threads, with answers and statistics
//! **bit-identical** to the sequential engines.
//!
//! ## Sharding strategy
//!
//! A HyPE pass is a single DFS whose only cross-subtree coupling sits at
//! the evaluation context: the context frame's pending states are fixed
//! *before* any child is visited, children communicate with the context
//! exclusively by OR-ing their filter-value rows into its accumulators
//! (commutative, order-free), and every candidate-DAG edge points strictly
//! downwards. The top-level subtrees under the context are therefore
//! embarrassingly parallel:
//!
//! 1. the calling thread opens the context node exactly as the sequential
//!    engine does and snapshots the context frame;
//! 2. each child subtree becomes one **shard**, claimed off a shared
//!    atomic counter by `min(threads, shards)` workers under
//!    [`std::thread::scope`] — no thread pool dependency, no `'static`
//!    bounds, and natural work stealing when subtree sizes are skewed;
//! 3. each worker replays the context frame **once** into a private core
//!    (one label-column map, pruning-table set and scratch pool per
//!    *worker*, so setup cost scales with the worker count even on
//!    documents with enormous fan-out, and the hot path stays
//!    allocation-free per node) and runs the **unchanged** sequential
//!    `open`/`close` logic over every subtree it claims — including
//!    per-query basic and OptHyPE(-C) pruning;
//! 4. the main thread ORs every worker's accumulator rows back into the
//!    real context frame, closes the context, and merges.
//!
//! ## Determinism guarantee
//!
//! Each per-query artefact is merged exactly, not approximately:
//!
//! * **Answers** — every worker's arena keeps the context vertices as its
//!   first `k` ids, so the sequential DAG is the disjoint union of the
//!   context block and the worker arenas glued at those shared ids. Answer
//!   collection runs the context block first, then seeds every worker
//!   arena with the reached context vertices; the union (a `BTreeSet` over
//!   pre-order [`NodeId`]s) is the sequential answer set in pre-order
//!   index order, whatever order shards were claimed or finished in.
//! * **[`HypeStats`]** — every counter is a sum of per-node contributions
//!   that depend only on that query's own state at the node, so summing
//!   context + shards reproduces the sequential numbers exactly; the
//!   differential suite (`tests/tests/parallel_differential.rs`) asserts
//!   equality for answers *and* statistics at several thread budgets.
//! * **[`BatchStats`]** — all queries of a batch travel *together* through
//!   every shard (a shard node is physically visited once however many
//!   queries are pending there), preserving the shared-traversal semantics
//!   of [`BatchStats::nodes_visited`]. Batched runs additionally
//!   parallelize **across queries** in the merge phase: each query's
//!   DAG collection is independent and is distributed over the same thread
//!   budget.
//!
//! ## Thread budget
//!
//! Every entry point takes a `threads` knob: `0` means "all available
//! cores" ([`std::thread::available_parallelism`]), `1` degenerates to a
//! sequential execution *through the shard split/merge machinery* (so a
//! budget of one is a correctness vise for the merge itself, not a separate
//! code path), and larger budgets are capped by the shard count. Workers
//! are spawned per evaluation; for a few top-level subtrees of a parsed
//! document the spawn cost is noise next to the traversal.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;

use smoqe_automata::CompiledMfa;
use smoqe_xml::{NodeId, XmlTree};

use crate::batch::{walk, BatchResult, BatchStats, CompiledBatchQuery};
use crate::engine::{HypeResult, HypeStats};
use crate::index::ReachabilityIndex;
use crate::runtime::{
    collect_answers, collect_answers_and_reached, CollectScratch, ContextBlock, ContextSeed,
    HypeCore, QueryRuntime, ShardQueryOutput,
};

// The parallel evaluator shares these across worker threads by reference;
// losing `Sync` on any of them must fail to compile right here rather than
// in a distant caller.
const _: () = {
    const fn assert_sync<T: Sync>() {}
    assert_sync::<XmlTree>();
    assert_sync::<CompiledMfa>();
    assert_sync::<ReachabilityIndex>();
    assert_sync::<CompiledBatchQuery<'static>>();
};

/// Resolves a thread-budget knob: `0` means all available cores.
pub(crate) fn resolve_threads(budget: usize) -> usize {
    if budget == 0 {
        thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        budget
    }
}

/// One worker's outputs: per-query artefacts covering every shard the
/// worker claimed, plus the worker's physical visit count. Which child
/// lands on which worker is scheduling-dependent, but the merge only ever
/// sums counters, ORs bitset rows and unions ordered sets — all
/// commutative — so the result is deterministic regardless.
struct WorkerResult {
    queries: Vec<ShardQueryOutput>,
    physical_visits: usize,
}

/// Evaluates a pre-compiled query at the root of `tree` with plain HyPE,
/// sharding the root's subtrees over up to `threads` worker threads.
///
/// The result — answers *and* [`HypeStats`] — is identical to
/// [`crate::evaluate_compiled`] at every thread budget:
///
/// ```
/// use std::sync::Arc;
/// use smoqe_automata::{compile_query, CompiledMfa};
/// use smoqe_hype::{evaluate_compiled, evaluate_parallel};
/// use smoqe_xml::XmlTreeBuilder;
/// use smoqe_xpath::parse_path;
///
/// let mut b = XmlTreeBuilder::new();
/// let root = b.root("hospital");
/// for name in ["Alice", "Bob"] {
///     let p = b.child(root, "patient");
///     b.child_with_text(p, "pname", name);
/// }
/// let doc = b.finish();
///
/// let ir = Arc::new(CompiledMfa::new(&compile_query(&parse_path("patient/pname").unwrap())));
/// let sequential = evaluate_compiled(&doc, &ir);
/// let parallel = evaluate_parallel(&doc, &ir, 4);
/// assert_eq!(parallel.answers, sequential.answers);
/// assert_eq!(parallel.stats, sequential.stats);
/// ```
pub fn evaluate_parallel(tree: &XmlTree, compiled: &Arc<CompiledMfa>, threads: usize) -> HypeResult {
    evaluate_parallel_at_with(tree, tree.root(), compiled, None, threads)
}

/// Evaluates a pre-compiled query at `context`, optionally with an
/// OptHyPE(-C) index, sharding `context`'s subtrees over up to `threads`
/// workers — the parallel counterpart of
/// [`crate::evaluate_compiled_at_with`].
pub fn evaluate_parallel_at_with(
    tree: &XmlTree,
    context: NodeId,
    compiled: &Arc<CompiledMfa>,
    index: Option<&ReachabilityIndex>,
    threads: usize,
) -> HypeResult {
    let query = CompiledBatchQuery {
        compiled: Arc::clone(compiled),
        index,
    };
    let mut batch = evaluate_batch_parallel_at(tree, context, &[query], threads);
    batch.results.pop().expect("one result per query")
}

/// Evaluates every query of `queries` at the root of `tree`, sharding the
/// traversal over up to `threads` workers — the parallel counterpart of
/// [`crate::evaluate_batch_compiled`].
pub fn evaluate_batch_parallel(
    tree: &XmlTree,
    queries: &[CompiledBatchQuery],
    threads: usize,
) -> BatchResult {
    evaluate_batch_parallel_at(tree, tree.root(), queries, threads)
}

/// Evaluates every query of `queries` at `context`, sharding the traversal
/// over up to `threads` workers. Per-query results *and* the aggregate
/// [`BatchStats`] are identical to [`crate::evaluate_batch_compiled_at`]
/// at every thread budget.
pub fn evaluate_batch_parallel_at(
    tree: &XmlTree,
    context: NodeId,
    queries: &[CompiledBatchQuery],
    threads: usize,
) -> BatchResult {
    let nodes_total = tree.subtree_size(context);
    if queries.is_empty() {
        return BatchResult {
            results: Vec::new(),
            stats: BatchStats {
                queries: 0,
                nodes_total,
                nodes_visited: 0,
                sequential_node_visits: 0,
            },
        };
    }
    let threads = resolve_threads(threads);

    // Open the evaluation context on the calling thread, exactly as the
    // sequential engine would (vertices, ε edges, λ triggers, statistics).
    let runtimes: Vec<QueryRuntime> = queries
        .iter()
        .map(|q| QueryRuntime::new(tree.labels(), Arc::clone(&q.compiled), q.index))
        .collect();
    let mut core = HypeCore::new(runtimes);
    let opened = core.open(context, tree.label(context));
    debug_assert!(opened, "the evaluation context is never pruned");
    let seeds = core.context_seeds();

    // Walk every top-level subtree in its own shard.
    let shards = run_shards(tree, context, queries, &seeds, threads);

    // Fold the shards' value rows into the real context frame (OR is
    // order-free) and close the context bottom-up as usual.
    for shard in &shards {
        for (query, sq) in shard.queries.iter().enumerate() {
            core.absorb_child_values(query, &sq.acc_any, &sq.acc);
        }
    }
    core.close(tree.text(context));
    let (blocks, context_physical) = core.into_context_parts();

    // Per-query merge + answer collection, parallel across queries.
    let results = finalize_queries(
        blocks,
        |query| shards.iter().map(|s| &s.queries[query]).collect(),
        nodes_total,
        threads,
    );

    let nodes_visited =
        context_physical + shards.iter().map(|s| s.physical_visits).sum::<usize>();
    let sequential_node_visits = results.iter().map(|r| r.stats.nodes_visited).sum();
    BatchResult {
        results,
        stats: BatchStats {
            queries: queries.len(),
            nodes_total,
            nodes_visited,
            sequential_node_visits,
        },
    }
}

/// One worker's whole run: a single private core — one `QueryRuntime` set
/// (ColumnMap, scratch pools, pruning tables) built per *worker*, not per
/// shard — seeded with the context frame once, then fed every child
/// subtree the worker claims off the shared counter. Walking several
/// children under one seeded context frame is exactly what the sequential
/// walk does, so per-query artefacts stay bit-exact while setup cost
/// scales with the worker count, not the (possibly huge) child count.
fn run_worker(
    tree: &XmlTree,
    context: NodeId,
    queries: &[CompiledBatchQuery],
    seeds: &[ContextSeed],
    children: &[NodeId],
    next: &AtomicUsize,
) -> WorkerResult {
    let runtimes: Vec<QueryRuntime> = queries
        .iter()
        .map(|q| QueryRuntime::new(tree.labels(), Arc::clone(&q.compiled), q.index))
        .collect();
    let mut core = HypeCore::new(runtimes);
    core.seed_context_frame(context, seeds);
    loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        let Some(&child) = children.get(i) else {
            break;
        };
        walk(&mut core, tree, child);
    }
    let (queries, physical_visits) = core.into_shard_outputs();
    WorkerResult {
        queries,
        physical_visits,
    }
}

/// Shards the context's children over up to `threads` scoped workers
/// (work-stolen off a shared counter) and collects the per-worker outputs.
fn run_shards(
    tree: &XmlTree,
    context: NodeId,
    queries: &[CompiledBatchQuery],
    seeds: &[ContextSeed],
    threads: usize,
) -> Vec<WorkerResult> {
    let children = tree.children(context);
    if children.is_empty() {
        return Vec::new();
    }
    let workers = threads.min(children.len());
    claim_parallel(workers, |next| {
        run_worker(tree, context, queries, seeds, children, next)
    })
}

/// The shared worker scaffold of the traversal and finalize phases (and of
/// [`crate::corpus`]'s across-documents axis): runs `worker` once per
/// worker slot, handing each the claim counter the bodies pull work-item
/// indices from. One worker runs inline (budget 1 exercises the same code
/// path, unspawned); panics inside a spawned worker are re-raised on the
/// calling thread after all workers joined.
pub(crate) fn claim_parallel<T: Send>(
    workers: usize,
    worker: impl Fn(&AtomicUsize) -> T + Sync,
) -> Vec<T> {
    let next = AtomicUsize::new(0);
    if workers <= 1 {
        return vec![worker(&next)];
    }
    let mut collected = Vec::with_capacity(workers);
    thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let worker = &worker;
                scope.spawn(move || worker(next))
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(result) => collected.push(result),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
    });
    collected
}

/// Merges one query from its per-shard-unit outputs: answers collected
/// over the context block first (also yielding the reached context
/// vertices), then over every shard unit seeded with that reached set;
/// statistics summed exactly.
///
/// A *shard unit* is whatever arena granularity the caller evaluated with —
/// one output per worker here, one per top-level child in
/// [`crate::incremental`]. The merge is invariant to the partition: every
/// counter is a sum of per-node contributions and the context placeholders
/// (the first `context_vertices` ids of every unit) are discounted once per
/// unit.
pub(crate) fn finalize_one(
    block: ContextBlock,
    shard_outputs: &[&ShardQueryOutput],
    nodes_total: usize,
    scratch: &mut CollectScratch,
) -> HypeResult {
    let context_vertices = block.cans.len();
    let (mut answers, reached) =
        collect_answers_and_reached(&block.cans, &block.edges, &block.init, scratch);
    let mut stats = block.stats;
    stats.nodes_total = nodes_total;
    stats.cans_vertices = context_vertices;
    stats.cans_edges = block.edges.len();
    for sq in shard_outputs {
        debug_assert_eq!(sq.context_vertices as usize, context_vertices);
        // Destructured so adding a counter to `HypeStats` fails to compile
        // here instead of being silently dropped from parallel results.
        // The two DAG-size counters are derived from the arenas (the shard
        // core never finalises them); `nodes_total` is context-wide.
        let HypeStats {
            nodes_total: _,
            nodes_visited,
            cans_vertices: _,
            cans_edges: _,
            afa_values_computed,
        } = sq.stats;
        stats.nodes_visited += nodes_visited;
        stats.afa_values_computed += afa_values_computed;
        stats.cans_vertices += sq.cans.len() - context_vertices;
        stats.cans_edges += sq.edges.len();
        answers.append(&mut collect_answers(&sq.cans, &sq.edges, &reached, scratch));
    }
    HypeResult { answers, stats }
}

/// Finalizes every query, distributing the per-query DAG collections over
/// up to `threads` workers when the batch is large enough to pay for it.
/// `outputs_of` names each query's shard-unit outputs (see
/// [`finalize_one`]); it is called once per query, from whichever worker
/// claims that query.
pub(crate) fn finalize_queries<'a>(
    blocks: Vec<ContextBlock>,
    outputs_of: impl Fn(usize) -> Vec<&'a ShardQueryOutput> + Sync,
    nodes_total: usize,
    threads: usize,
) -> Vec<HypeResult> {
    let workers = threads.min(blocks.len()).max(1);
    // Each block is consumed by exactly one worker; the Mutex<Option<..>>
    // wrapper is what lets a worker move its claim out of the shared Vec.
    let slots: Vec<Mutex<Option<ContextBlock>>> =
        blocks.into_iter().map(|b| Mutex::new(Some(b))).collect();
    let mut collected: Vec<(usize, HypeResult)> = claim_parallel(workers, |next| {
        let mut scratch = CollectScratch::new();
        let mut mine = Vec::new();
        loop {
            let q = next.fetch_add(1, Ordering::Relaxed);
            let Some(slot) = slots.get(q) else {
                break;
            };
            let block = slot
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .take()
                .expect("each slot is claimed exactly once");
            let outputs = outputs_of(q);
            mine.push((q, finalize_one(block, &outputs, nodes_total, &mut scratch)));
        }
        mine
    })
    .into_iter()
    .flatten()
    .collect();
    collected.sort_by_key(|&(q, _)| q);
    collected.into_iter().map(|(_, result)| result).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::{evaluate_batch_compiled, BatchQuery};
    use crate::engine::evaluate_compiled_at_with;
    use smoqe_automata::compile_query;
    use smoqe_xml::hospital::hospital_document_dtd;
    use smoqe_xml::XmlTreeBuilder;
    use smoqe_xpath::parse_path;

    fn ir(query: &str) -> Arc<CompiledMfa> {
        Arc::new(CompiledMfa::new(&compile_query(&parse_path(query).unwrap())))
    }

    /// A document whose root has several structurally different subtrees.
    fn doc() -> XmlTree {
        let mut b = XmlTreeBuilder::new();
        let root = b.root("hospital");
        for (name, diag) in [("Alice", "heart disease"), ("Bob", "flu"), ("Carol", "heart disease")] {
            let dept = b.child(root, "department");
            let p = b.child(dept, "patient");
            b.child_with_text(p, "pname", name);
            let v = b.child(p, "visit");
            let t = b.child(v, "treatment");
            let m = b.child(t, "medication");
            b.child_with_text(m, "diagnosis", diag);
        }
        b.finish()
    }

    #[test]
    fn solo_matches_sequential_at_every_budget() {
        let doc = doc();
        for query in ["//diagnosis", "department/patient/pname", "doctor"] {
            let compiled = ir(query);
            let sequential = crate::evaluate_compiled(&doc, &compiled);
            for threads in [0, 1, 2, 5, 64] {
                let parallel = evaluate_parallel(&doc, &compiled, threads);
                assert_eq!(parallel.answers, sequential.answers, "`{query}` @{threads}");
                assert_eq!(parallel.stats, sequential.stats, "`{query}` @{threads}");
            }
        }
    }

    #[test]
    fn batch_matches_sequential_including_aggregate_stats() {
        let doc = doc();
        let queries: Vec<CompiledBatchQuery> = ["//diagnosis", "department/patient/pname"]
            .iter()
            .map(|q| CompiledBatchQuery::new(ir(q)))
            .collect();
        let sequential = evaluate_batch_compiled(&doc, &queries);
        for threads in [1, 2, 8] {
            let parallel = evaluate_batch_parallel(&doc, &queries, threads);
            assert_eq!(parallel.stats, sequential.stats, "@{threads}");
            for (p, s) in parallel.results.iter().zip(&sequential.results) {
                assert_eq!(p.answers, s.answers, "@{threads}");
                assert_eq!(p.stats, s.stats, "@{threads}");
            }
        }
    }

    #[test]
    fn single_node_context_has_no_shards() {
        let doc = doc();
        let compiled = ir("diagnosis");
        let leaf = doc
            .node_ids()
            .find(|&n| doc.children(n).is_empty())
            .expect("tree has leaves");
        let sequential = evaluate_compiled_at_with(&doc, leaf, &compiled, None);
        let parallel = evaluate_parallel_at_with(&doc, leaf, &compiled, None, 8);
        assert_eq!(parallel.answers, sequential.answers);
        assert_eq!(parallel.stats, sequential.stats);
    }

    #[test]
    fn indexed_pruning_matches_sequential() {
        let doc = doc();
        let dtd = hospital_document_dtd();
        let mfa = compile_query(&parse_path("//diagnosis").unwrap());
        let compiled = Arc::new(CompiledMfa::new(&mfa));
        let index = ReachabilityIndex::new(&mfa, &dtd, doc.labels());
        let sequential = evaluate_compiled_at_with(&doc, doc.root(), &compiled, Some(&index));
        for threads in [1, 3] {
            let parallel =
                evaluate_parallel_at_with(&doc, doc.root(), &compiled, Some(&index), threads);
            assert_eq!(parallel.answers, sequential.answers, "@{threads}");
            assert_eq!(parallel.stats, sequential.stats, "@{threads}");
        }
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let doc = doc();
        let batch = evaluate_batch_parallel(&doc, &[], 4);
        assert!(batch.results.is_empty());
        assert_eq!(batch.stats.queries, 0);
        assert_eq!(batch.stats.nodes_visited, 0);
        assert_eq!(batch.stats.nodes_total, doc.len());
    }

    #[test]
    fn mirrors_sequential_batch_with_builder_queries() {
        // Cross-check against the builder-MFA convenience path too.
        let doc = doc();
        let mfa = compile_query(&parse_path("department/patient[visit]").unwrap());
        let sequential = crate::evaluate_batch(&doc, &[BatchQuery::new(&mfa)]);
        let parallel =
            evaluate_batch_parallel(&doc, &[CompiledBatchQuery::new(Arc::new(CompiledMfa::new(&mfa)))], 2);
        assert_eq!(parallel.results[0].answers, sequential.results[0].answers);
        assert_eq!(parallel.results[0].stats, sequential.results[0].stats);
    }
}
