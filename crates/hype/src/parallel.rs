//! Parallel sharded HyPE evaluation: the batched compiled engine spread
//! across a pool of scoped threads, with answers and statistics
//! **bit-identical** to the sequential engines.
//!
//! ## Sharding strategy
//!
//! A HyPE pass is a single DFS whose only cross-subtree coupling sits at
//! the evaluation context: the context frame's pending states are fixed
//! *before* any child is visited, children communicate with the context
//! exclusively by OR-ing their filter-value rows into its accumulators
//! (commutative, order-free), and every candidate-DAG edge points strictly
//! downwards. The top-level subtrees under the context are therefore
//! embarrassingly parallel:
//!
//! 1. the calling thread opens the context node exactly as the sequential
//!    engine does and snapshots the context frame;
//! 2. a **split planner** turns the context's children into leaf *tasks*,
//!    recursively re-splitting any oversized child (≥ 2 children of its
//!    own and more than `max(256, nodes_total / (2 · threads))` subtree
//!    nodes) into a *spine*: the oversized node is opened once on the
//!    calling thread under its parent's replayed frame, its own frame is
//!    snapshotted, and its children re-enter the planner — so a single
//!    dominant subtree no longer pins the whole document to one worker;
//! 3. tasks are distributed round-robin over per-worker fixed-capacity
//!    **Chase–Lev work-stealing deques** (`TaskDeque`, plain `std`
//!    atomics): each of `min(threads, tasks)` scoped workers drains its
//!    own deque LIFO and steals FIFO from the others when it runs dry.
//!    Each worker replays a seed frame **once per group** it touches into
//!    a private core (one label-column map, pruning-table set and scratch
//!    pool per *worker and group*, so the hot path stays allocation-free
//!    per node) and runs the **unchanged** sequential `open`/`close`
//!    logic over every subtree it claims — including per-query basic and
//!    OptHyPE(-C) pruning;
//! 4. the main thread merges spines bottom-up — absorbing their units'
//!    accumulator rows, closing the spine node, and grafting the unit
//!    arenas (`ShardQueryOutput::graft_child_unit`) so each spine
//!    collapses into one ordinary shard unit of its parent group — then
//!    ORs every top-level unit's accumulator rows back into the real
//!    context frame, closes the context, and merges.
//!
//! ## Determinism guarantee
//!
//! Each per-query artefact is merged exactly, not approximately:
//!
//! * **Answers** — every unit's arena keeps its group frame's vertices as
//!   its first `k` ids, so the sequential DAG is the disjoint union of the
//!   context block and the unit arenas glued at those shared ids (spine
//!   units are grafted into the same shape before they reach the context
//!   merge). Answer collection runs the context block first, then seeds
//!   every unit arena with the reached context vertices; the union (a
//!   `BTreeSet` over pre-order [`NodeId`]s) is the sequential answer set
//!   in pre-order index order, whatever order tasks were claimed, stolen
//!   or finished in.
//! * **[`HypeStats`]** — every counter is a sum of per-node contributions
//!   that depend only on that query's own state at the node, so summing
//!   context + spines + tasks reproduces the sequential numbers exactly;
//!   the differential suite (`tests/tests/parallel_differential.rs`)
//!   asserts equality for answers *and* statistics at several thread
//!   budgets. The one non-sequential field, `max_shard_fraction`, is a
//!   skew diagnostic excluded from [`HypeStats`] equality.
//! * **[`BatchStats`]** — all queries of a batch travel *together* through
//!   every task (a node is physically visited once however many queries
//!   are pending there), preserving the shared-traversal semantics of
//!   [`BatchStats::nodes_visited`]. Batched runs additionally parallelize
//!   **across queries** in the merge phase: each query's DAG collection is
//!   independent and is distributed over the same thread budget.
//!
//! ## Thread budget
//!
//! Every entry point takes a `threads` knob: `0` means "all available
//! cores" ([`std::thread::available_parallelism`]), `1` degenerates to a
//! sequential execution *through the planner, deque and merge machinery*
//! (so a budget of one is a correctness vise for re-splitting and
//! grafting, not a separate code path), and larger budgets are capped by
//! the **task count after re-splitting** — a two-subtree document with
//! one dominant subtree still fans out to every worker. Workers are
//! spawned per evaluation; for a parsed document the spawn cost is noise
//! next to the traversal.

use std::sync::atomic::{fence, AtomicIsize, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;

use smoqe_automata::CompiledMfa;
use smoqe_xml::{NodeId, XmlTree};

use crate::batch::{walk, BatchResult, BatchStats, CompiledBatchQuery};
use crate::engine::{HypeResult, HypeStats};
use crate::index::ReachabilityIndex;
use crate::runtime::{
    collect_answers, collect_answers_and_reached, CollectScratch, ContextBlock, ContextSeed,
    HypeCore, QueryRuntime, ShardQueryOutput,
};

// The parallel evaluator shares these across worker threads by reference;
// losing `Sync` on any of them must fail to compile right here rather than
// in a distant caller.
const _: () = {
    const fn assert_sync<T: Sync>() {}
    assert_sync::<XmlTree>();
    assert_sync::<CompiledMfa>();
    assert_sync::<ReachabilityIndex>();
    assert_sync::<CompiledBatchQuery<'static>>();
    assert_sync::<TaskDeque>();
};

/// Subtrees at or below this node count are never re-split: the spine
/// bookkeeping (a private core seeded and opened on the main thread) only
/// pays for itself on subtrees big enough to dominate a worker.
const MIN_SPLIT_NODES: usize = 256;

/// Resolves a thread-budget knob: `0` means all available cores.
pub(crate) fn resolve_threads(budget: usize) -> usize {
    if budget == 0 {
        thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        budget
    }
}

/// Evaluates a pre-compiled query at the root of `tree` with plain HyPE,
/// sharding the root's subtrees over up to `threads` worker threads.
///
/// The result — answers *and* [`HypeStats`] — is identical to
/// [`crate::evaluate_compiled`] at every thread budget:
///
/// ```
/// use std::sync::Arc;
/// use smoqe_automata::{compile_query, CompiledMfa};
/// use smoqe_hype::{evaluate_compiled, evaluate_parallel};
/// use smoqe_xml::XmlTreeBuilder;
/// use smoqe_xpath::parse_path;
///
/// let mut b = XmlTreeBuilder::new();
/// let root = b.root("hospital");
/// for name in ["Alice", "Bob"] {
///     let p = b.child(root, "patient");
///     b.child_with_text(p, "pname", name);
/// }
/// let doc = b.finish();
///
/// let ir = Arc::new(CompiledMfa::new(&compile_query(&parse_path("patient/pname").unwrap())));
/// let sequential = evaluate_compiled(&doc, &ir);
/// let parallel = evaluate_parallel(&doc, &ir, 4);
/// assert_eq!(parallel.answers, sequential.answers);
/// assert_eq!(parallel.stats, sequential.stats);
/// ```
pub fn evaluate_parallel(tree: &XmlTree, compiled: &Arc<CompiledMfa>, threads: usize) -> HypeResult {
    evaluate_parallel_at_with(tree, tree.root(), compiled, None, threads)
}

/// Evaluates a pre-compiled query at `context`, optionally with an
/// OptHyPE(-C) index, sharding `context`'s subtrees over up to `threads`
/// workers — the parallel counterpart of
/// [`crate::evaluate_compiled_at_with`].
pub fn evaluate_parallel_at_with(
    tree: &XmlTree,
    context: NodeId,
    compiled: &Arc<CompiledMfa>,
    index: Option<&ReachabilityIndex>,
    threads: usize,
) -> HypeResult {
    let query = CompiledBatchQuery {
        compiled: Arc::clone(compiled),
        index,
    };
    let mut batch = evaluate_batch_parallel_at(tree, context, &[query], threads);
    batch.results.pop().expect("one result per query")
}

/// Evaluates every query of `queries` at the root of `tree`, sharding the
/// traversal over up to `threads` workers — the parallel counterpart of
/// [`crate::evaluate_batch_compiled`].
pub fn evaluate_batch_parallel(
    tree: &XmlTree,
    queries: &[CompiledBatchQuery],
    threads: usize,
) -> BatchResult {
    evaluate_batch_parallel_at(tree, tree.root(), queries, threads)
}

/// Evaluates every query of `queries` at `context`, sharding the traversal
/// over up to `threads` workers. Per-query results *and* the aggregate
/// [`BatchStats`] are identical to [`crate::evaluate_batch_compiled_at`]
/// at every thread budget.
pub fn evaluate_batch_parallel_at(
    tree: &XmlTree,
    context: NodeId,
    queries: &[CompiledBatchQuery],
    threads: usize,
) -> BatchResult {
    let nodes_total = tree.subtree_size(context);
    if queries.is_empty() {
        return BatchResult {
            results: Vec::new(),
            stats: BatchStats {
                queries: 0,
                nodes_total,
                nodes_visited: 0,
                sequential_node_visits: 0,
            },
        };
    }
    let threads = resolve_threads(threads);

    // Open the evaluation context on the calling thread, exactly as the
    // sequential engine would (vertices, ε edges, λ triggers, statistics).
    let runtimes: Vec<QueryRuntime> = queries
        .iter()
        .map(|q| QueryRuntime::new(tree.labels(), Arc::clone(&q.compiled), q.index))
        .collect();
    let mut core = HypeCore::new(runtimes);
    let opened = core.open(context, tree.label(context));
    debug_assert!(opened, "the evaluation context is never pruned");
    let seeds = core.context_seeds();

    // Plan → execute → merge.
    let mut plan = plan_shards(tree, context, queries, seeds, threads, nodes_total);
    let (mut units, max_task_visits) = run_tasks(tree, queries, &plan, threads);
    merge_spines(tree, &mut plan.spines, &mut units);
    let top_units = units.swap_remove(0);

    // Fold the top-level units' value rows into the real context frame (OR
    // is order-free) and close the context bottom-up as usual.
    for (unit, _) in &top_units {
        for (query, sq) in unit.iter().enumerate() {
            core.absorb_child_values(query, &sq.acc_any, &sq.acc);
        }
    }
    core.close(tree.text(context));
    let (blocks, context_physical) = core.into_context_parts();

    // Per-query merge + answer collection, parallel across queries.
    let mut results = finalize_queries(
        blocks,
        |query| top_units.iter().map(|(unit, _)| &unit[query]).collect(),
        nodes_total,
        threads,
    );

    let nodes_visited =
        context_physical + top_units.iter().map(|(_, physical)| physical).sum::<usize>();
    let max_shard_fraction = if nodes_visited > 0 {
        max_task_visits as f64 / nodes_visited as f64
    } else {
        0.0
    };
    for result in &mut results {
        result.stats.max_shard_fraction = max_shard_fraction;
    }
    let sequential_node_visits = results.iter().map(|r| r.stats.nodes_visited).sum();
    BatchResult {
        results,
        stats: BatchStats {
            queries: queries.len(),
            nodes_total,
            nodes_visited,
            sequential_node_visits,
        },
    }
}

/// One leaf work unit: a subtree walked whole by whichever worker claims
/// it, under the seed frame of its `group` (0 = the context, `g > 0` =
/// spine `g - 1`).
#[derive(Debug, Clone, Copy)]
struct Task {
    node: NodeId,
    group: u32,
}

/// One re-split oversized subtree: its node was opened on the calling
/// thread under a replay of its parent group's frame, and its own frame
/// snapshot seeds the cores that walk its children.
struct SpinePlan<'a> {
    /// The spine core — parent-group frame seeded, spine node opened.
    /// Held until the merge phase closes it over its units.
    core: HypeCore<'a>,
    node: NodeId,
    /// Group the finished spine unit merges into (0 = context).
    parent_group: u32,
    /// Query id at each spine-frame position (the frame may cover a query
    /// subset — queries pruned at the spine have no work in its subtree);
    /// maps unit outputs to `absorb_child_values` positions at merge time.
    frame_queries: Vec<u32>,
    /// Spine-frame snapshot: the seed for every core walking its children.
    seeds: Vec<ContextSeed>,
}

/// The split planner's output: leaf tasks plus the spine scaffolding, in
/// creation order (parents before their nested spines).
struct ShardPlan<'a> {
    context: NodeId,
    context_seeds: Vec<ContextSeed>,
    tasks: Vec<Task>,
    spines: Vec<SpinePlan<'a>>,
}

/// Counts the subtree rooted at `node` without materialising the node
/// list ([`XmlTree::subtree_size`] allocates the full descendant vector).
fn subtree_nodes(tree: &XmlTree, node: NodeId) -> usize {
    let mut count = 1usize;
    let mut stack: Vec<NodeId> = tree.children(node).to_vec();
    while let Some(n) = stack.pop() {
        count += 1;
        stack.extend_from_slice(tree.children(n));
    }
    count
}

/// Turns the context's children into leaf tasks, recursively re-splitting
/// oversized children into spines. The split predicate is uniform across
/// thread budgets (so a budget of one still exercises the spine machinery
/// on skewed documents), and the spine count is capped at `4 · threads` —
/// past that there is already enough fan-out to keep every worker busy,
/// and an unbounded pathological chain of nested spines would otherwise
/// allocate a core per level.
fn plan_shards<'a>(
    tree: &'a XmlTree,
    context: NodeId,
    queries: &'a [CompiledBatchQuery],
    context_seeds: Vec<ContextSeed>,
    threads: usize,
    nodes_total: usize,
) -> ShardPlan<'a> {
    let limit = (nodes_total / threads.saturating_mul(2).max(1)).max(MIN_SPLIT_NODES);
    let max_spines = threads.saturating_mul(4);
    let mut plan = ShardPlan {
        context,
        context_seeds,
        tasks: Vec::new(),
        spines: Vec::new(),
    };
    // FIFO worklist: a spine's children re-enter behind the current level,
    // so spines are created parents-first (the merge pops them in reverse).
    let mut pending: Vec<(NodeId, u32)> = tree
        .children(context)
        .iter()
        .map(|&child| (child, 0u32))
        .collect();
    let mut i = 0;
    while i < pending.len() {
        let (node, group) = pending[i];
        i += 1;
        let split = plan.spines.len() < max_spines
            && tree.children(node).len() >= 2
            && subtree_nodes(tree, node) > limit;
        if !split {
            plan.tasks.push(Task { node, group });
            continue;
        }
        let runtimes: Vec<QueryRuntime> = queries
            .iter()
            .map(|q| QueryRuntime::new(tree.labels(), Arc::clone(&q.compiled), q.index))
            .collect();
        let mut core = HypeCore::new(runtimes);
        let (group_node, group_seeds) = if group == 0 {
            (plan.context, &plan.context_seeds)
        } else {
            let spine = &plan.spines[group as usize - 1];
            (spine.node, &spine.seeds)
        };
        core.seed_context_frame(group_node, group_seeds);
        if !core.open(node, tree.label(node)) {
            // Every query pruned the whole subtree. Dropping the probe core
            // discards its counters, and the leaf task re-runs the same
            // cheap failed open in a worker core — which records them once,
            // exactly like the sequential walk.
            plan.tasks.push(Task { node, group });
            continue;
        }
        let seeds = core.context_seeds();
        let frame_queries = core.frame_query_ids();
        plan.spines.push(SpinePlan {
            core,
            node,
            parent_group: group,
            frame_queries,
            seeds,
        });
        let new_group = plan.spines.len() as u32;
        for &child in tree.children(node) {
            pending.push((child, new_group));
        }
    }
    plan
}

/// A fixed-capacity Chase–Lev work-stealing deque over task indices.
///
/// Every item is pushed by the planner **before** the workers spawn (the
/// spawn is the happens-before edge that publishes the buffer), so the
/// buffer is immutable while the deque is shared and only the two cursors
/// are atomic: the owner pops `bottom` LIFO (hot subtrees stay cache-warm),
/// thieves race CAS on `top` FIFO (the oldest — round-robin ⇒ typically
/// largest-remaining — task moves, minimising steal traffic). `pop` must
/// only ever be called by the deque's owner; `steal` by anyone.
pub(crate) struct TaskDeque {
    items: Box<[usize]>,
    top: AtomicIsize,
    bottom: AtomicIsize,
}

/// Outcome of a [`TaskDeque::steal`] attempt. `Retry` means the CAS lost
/// to a concurrent pop/steal — the deque may still hold work, so an
/// all-`Empty` sweep (and only that) lets a worker retire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Steal {
    Success(usize),
    Empty,
    Retry,
}

impl TaskDeque {
    fn new(items: Vec<usize>) -> Self {
        let bottom = items.len() as isize;
        TaskDeque {
            items: items.into_boxed_slice(),
            top: AtomicIsize::new(0),
            bottom: AtomicIsize::new(bottom),
        }
    }

    /// Owner-only LIFO pop. The SeqCst fence orders the speculative
    /// `bottom` decrement against thieves' `top` reads; the final item is
    /// raced for with a CAS on `top` so it is handed out exactly once.
    fn pop(&self) -> Option<usize> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        self.bottom.store(b, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t > b {
            // Already empty: undo the decrement.
            self.bottom.store(b + 1, Ordering::Relaxed);
            return None;
        }
        let item = self.items[b as usize];
        if t == b {
            // Last item: win it from any concurrent thief via `top`.
            let won = self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok();
            self.bottom.store(b + 1, Ordering::Relaxed);
            return won.then_some(item);
        }
        Some(item)
    }

    /// Thief-side FIFO steal; any thread but the owner may call it.
    fn steal(&self) -> Steal {
        let t = self.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t >= b {
            return Steal::Empty;
        }
        let item = self.items[t as usize];
        match self
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
        {
            Ok(_) => Steal::Success(item),
            Err(_) => Steal::Retry,
        }
    }
}

/// One worker's outputs: per-group shard artefacts covering every task the
/// worker claimed, plus skew bookkeeping. Which task lands on which worker
/// is scheduling-dependent, but the merge only ever sums counters, ORs
/// bitset rows, grafts arenas and unions ordered sets — all commutative —
/// so the result is deterministic regardless.
struct DequeWorkerResult {
    /// `(group, per-query outputs, physical visits)` for every group this
    /// worker created a core for.
    groups: Vec<(usize, Vec<ShardQueryOutput>, usize)>,
    /// The largest single task the worker ran, in physical node visits —
    /// the numerator of [`HypeStats::max_shard_fraction`].
    max_task_visits: usize,
}

/// One worker's whole run: drain the own deque, then steal. Cores are
/// created lazily, one per *group* the worker actually touches — a single
/// `QueryRuntime` set (ColumnMap, scratch pools, pruning tables) per
/// worker and group, seeded once and fed every task of that group the
/// worker claims. Walking several children under one seeded frame is
/// exactly what the sequential walk does, so per-query artefacts stay
/// bit-exact while setup cost scales with the worker count, not the
/// (possibly huge) child count.
fn run_deque_worker(
    tree: &XmlTree,
    queries: &[CompiledBatchQuery],
    groups: &[(NodeId, &[ContextSeed])],
    tasks: &[Task],
    deques: &[TaskDeque],
    me: usize,
) -> DequeWorkerResult {
    let mut cores: Vec<Option<HypeCore>> = (0..groups.len()).map(|_| None).collect();
    let mut max_task_visits = 0usize;
    {
        let mut run_task = |index: usize| {
            let task = tasks[index];
            let g = task.group as usize;
            let core = cores[g].get_or_insert_with(|| {
                let runtimes: Vec<QueryRuntime> = queries
                    .iter()
                    .map(|q| QueryRuntime::new(tree.labels(), Arc::clone(&q.compiled), q.index))
                    .collect();
                let mut core = HypeCore::new(runtimes);
                let (group_node, group_seeds) = groups[g];
                core.seed_context_frame(group_node, group_seeds);
                core
            });
            let before = core.physical_visits;
            walk(core, tree, task.node);
            max_task_visits = max_task_visits.max(core.physical_visits - before);
        };
        let mine = &deques[me];
        loop {
            if let Some(index) = mine.pop() {
                run_task(index);
                continue;
            }
            // Own deque drained: sweep the other workers' deques. No task
            // is ever pushed after spawn, so a full all-`Empty` sweep means
            // the run is globally out of work.
            let mut retry = false;
            let mut stolen = None;
            for other in (me + 1..deques.len()).chain(0..me) {
                match deques[other].steal() {
                    Steal::Success(index) => {
                        stolen = Some(index);
                        break;
                    }
                    Steal::Retry => retry = true,
                    Steal::Empty => {}
                }
            }
            match stolen {
                Some(index) => run_task(index),
                None if retry => std::hint::spin_loop(),
                None => break,
            }
        }
    }
    let groups = cores
        .into_iter()
        .enumerate()
        .filter_map(|(g, core)| {
            core.map(|core| {
                let (outputs, physical) = core.into_shard_outputs();
                (g, outputs, physical)
            })
        })
        .collect();
    DequeWorkerResult {
        groups,
        max_task_visits,
    }
}

/// One merged work unit: per-query shard outputs plus the unit's physical
/// visit count.
type Unit = (Vec<ShardQueryOutput>, usize);

/// Runs the planned tasks over up to `threads` scoped workers claiming off
/// per-worker Chase–Lev deques, and buckets the resulting units by group.
/// Also returns the largest single task in physical visits (the
/// `max_shard_fraction` numerator).
fn run_tasks<'a>(
    tree: &XmlTree,
    queries: &[CompiledBatchQuery],
    plan: &ShardPlan<'a>,
    threads: usize,
) -> (Vec<Vec<Unit>>, usize) {
    let mut units: Vec<Vec<Unit>> = (0..1 + plan.spines.len()).map(|_| Vec::new()).collect();
    if plan.tasks.is_empty() {
        return (units, 0);
    }
    // Cap by the task count *after* re-splitting: a two-subtree document
    // with one dominant subtree still occupies every worker.
    let workers = threads.min(plan.tasks.len()).max(1);
    let mut lists: Vec<Vec<usize>> = (0..workers).map(|_| Vec::new()).collect();
    for index in 0..plan.tasks.len() {
        lists[index % workers].push(index);
    }
    let deques: Vec<TaskDeque> = lists.into_iter().map(TaskDeque::new).collect();
    let groups: Vec<(NodeId, &[ContextSeed])> =
        std::iter::once((plan.context, plan.context_seeds.as_slice()))
            .chain(plan.spines.iter().map(|s| (s.node, s.seeds.as_slice())))
            .collect();
    let results: Vec<DequeWorkerResult> = if workers <= 1 {
        // Budget 1 exercises the same deque code path, unspawned.
        vec![run_deque_worker(tree, queries, &groups, &plan.tasks, &deques, 0)]
    } else {
        let mut collected = Vec::with_capacity(workers);
        thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|me| {
                    let groups = &groups;
                    let deques = &deques;
                    let tasks = &plan.tasks;
                    scope.spawn(move || run_deque_worker(tree, queries, groups, tasks, deques, me))
                })
                .collect();
            for handle in handles {
                match handle.join() {
                    Ok(result) => collected.push(result),
                    Err(panic) => std::panic::resume_unwind(panic),
                }
            }
        });
        collected
    };
    let mut max_task_visits = 0;
    for result in results {
        max_task_visits = max_task_visits.max(result.max_task_visits);
        for (group, outputs, physical) in result.groups {
            units[group].push((outputs, physical));
        }
    }
    (units, max_task_visits)
}

/// Collapses every spine into one ordinary unit of its parent group,
/// bottom-up (spines are created parents-first, so popping runs nested
/// spines before the spines they feed): absorb each unit's accumulator
/// rows at the spine-frame positions, close the spine node exactly as the
/// sequential walk would, extract the spine's own shard outputs, and graft
/// the unit arenas in. After the loop `units[0]` holds only context-level
/// units and the context merge proceeds as if no re-splitting happened.
fn merge_spines<'a>(
    tree: &XmlTree,
    spines: &mut Vec<SpinePlan<'a>>,
    units: &mut [Vec<Unit>],
) {
    while let Some(spine) = spines.pop() {
        let group = spines.len() + 1;
        let SpinePlan {
            mut core,
            node,
            parent_group,
            frame_queries,
            seeds: _,
        } = spine;
        let my_units = std::mem::take(&mut units[group]);
        for (unit, _) in &my_units {
            for (position, &query) in frame_queries.iter().enumerate() {
                let sq = &unit[query as usize];
                core.absorb_child_values(position, &sq.acc_any, &sq.acc);
            }
        }
        core.close(tree.text(node));
        let (mut outputs, spine_physical) = core.into_shard_outputs();
        let mut physical = spine_physical;
        for (unit, unit_physical) in &my_units {
            physical += unit_physical;
            for (query, sq) in unit.iter().enumerate() {
                outputs[query].graft_child_unit(sq);
            }
        }
        units[parent_group as usize].push((outputs, physical));
    }
}

/// The shared worker scaffold of the finalize phase (and of
/// [`crate::corpus`]'s across-documents axis): runs `worker` once per
/// worker slot, handing each the claim counter the bodies pull work-item
/// indices from. One worker runs inline (budget 1 exercises the same code
/// path, unspawned); panics inside a spawned worker are re-raised on the
/// calling thread after all workers joined.
pub(crate) fn claim_parallel<T: Send>(
    workers: usize,
    worker: impl Fn(&AtomicUsize) -> T + Sync,
) -> Vec<T> {
    let next = AtomicUsize::new(0);
    if workers <= 1 {
        return vec![worker(&next)];
    }
    let mut collected = Vec::with_capacity(workers);
    thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let worker = &worker;
                scope.spawn(move || worker(next))
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(result) => collected.push(result),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
    });
    collected
}

/// Merges one query from its per-shard-unit outputs: answers collected
/// over the context block first (also yielding the reached context
/// vertices), then over every shard unit seeded with that reached set;
/// statistics summed exactly.
///
/// A *shard unit* is whatever arena granularity the caller evaluated with —
/// one output per worker or merged spine here, one per top-level child in
/// [`crate::incremental`]. The merge is invariant to the partition: every
/// counter is a sum of per-node contributions and the context placeholders
/// (the first `context_vertices` ids of every unit) are discounted once per
/// unit.
pub(crate) fn finalize_one(
    block: ContextBlock,
    shard_outputs: &[&ShardQueryOutput],
    nodes_total: usize,
    scratch: &mut CollectScratch,
) -> HypeResult {
    let context_vertices = block.cans.len();
    let (mut answers, reached) =
        collect_answers_and_reached(&block.cans, &block.edges, &block.init, scratch);
    let mut stats = block.stats;
    stats.nodes_total = nodes_total;
    stats.cans_vertices = context_vertices;
    stats.cans_edges = block.edges.len();
    for sq in shard_outputs {
        debug_assert_eq!(sq.context_vertices as usize, context_vertices);
        // Destructured so adding a counter to `HypeStats` fails to compile
        // here instead of being silently dropped from parallel results.
        // The two DAG-size counters are derived from the arenas (the shard
        // core never finalises them); `nodes_total` is context-wide, and
        // `max_shard_fraction` is a whole-run diagnostic the parallel
        // entry points stamp after the merge.
        let HypeStats {
            nodes_total: _,
            nodes_visited,
            cans_vertices: _,
            cans_edges: _,
            afa_values_computed,
            max_shard_fraction: _,
        } = sq.stats;
        stats.nodes_visited += nodes_visited;
        stats.afa_values_computed += afa_values_computed;
        stats.cans_vertices += sq.cans.len() - context_vertices;
        stats.cans_edges += sq.edges.len();
        answers.append(&mut collect_answers(&sq.cans, &sq.edges, &reached, scratch));
    }
    HypeResult { answers, stats }
}

/// Finalizes every query, distributing the per-query DAG collections over
/// up to `threads` workers when the batch is large enough to pay for it.
/// `outputs_of` names each query's shard-unit outputs (see
/// [`finalize_one`]); it is called once per query, from whichever worker
/// claims that query.
pub(crate) fn finalize_queries<'a>(
    blocks: Vec<ContextBlock>,
    outputs_of: impl Fn(usize) -> Vec<&'a ShardQueryOutput> + Sync,
    nodes_total: usize,
    threads: usize,
) -> Vec<HypeResult> {
    let workers = threads.min(blocks.len()).max(1);
    // Each block is consumed by exactly one worker; the Mutex<Option<..>>
    // wrapper is what lets a worker move its claim out of the shared Vec.
    let slots: Vec<Mutex<Option<ContextBlock>>> =
        blocks.into_iter().map(|b| Mutex::new(Some(b))).collect();
    let mut collected: Vec<(usize, HypeResult)> = claim_parallel(workers, |next| {
        let mut scratch = CollectScratch::new();
        let mut mine = Vec::new();
        loop {
            let q = next.fetch_add(1, Ordering::Relaxed);
            let Some(slot) = slots.get(q) else {
                break;
            };
            let block = slot
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .take()
                .expect("each slot is claimed exactly once");
            let outputs = outputs_of(q);
            mine.push((q, finalize_one(block, &outputs, nodes_total, &mut scratch)));
        }
        mine
    })
    .into_iter()
    .flatten()
    .collect();
    collected.sort_by_key(|&(q, _)| q);
    collected.into_iter().map(|(_, result)| result).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::{evaluate_batch_compiled, BatchQuery};
    use crate::engine::evaluate_compiled_at_with;
    use smoqe_automata::compile_query;
    use smoqe_xml::hospital::hospital_document_dtd;
    use smoqe_xml::XmlTreeBuilder;
    use smoqe_xpath::parse_path;

    fn ir(query: &str) -> Arc<CompiledMfa> {
        Arc::new(CompiledMfa::new(&compile_query(&parse_path(query).unwrap())))
    }

    /// A document whose root has several structurally different subtrees.
    fn doc() -> XmlTree {
        let mut b = XmlTreeBuilder::new();
        let root = b.root("hospital");
        for (name, diag) in [("Alice", "heart disease"), ("Bob", "flu"), ("Carol", "heart disease")] {
            let dept = b.child(root, "department");
            let p = b.child(dept, "patient");
            b.child_with_text(p, "pname", name);
            let v = b.child(p, "visit");
            let t = b.child(v, "treatment");
            let m = b.child(t, "medication");
            b.child_with_text(m, "diagnosis", diag);
        }
        b.finish()
    }

    /// Two top-level subtrees, one holding ~99% of the nodes — the shape
    /// the pre-splitting evaluator pinned to two workers.
    fn skewed_doc() -> XmlTree {
        let mut b = XmlTreeBuilder::new();
        let root = b.root("hospital");
        let big = b.child(root, "department");
        for i in 0..300 {
            let p = b.child(big, "patient");
            b.child_with_text(p, "pname", if i % 2 == 0 { "Alice" } else { "Bob" });
            let v = b.child(p, "visit");
            let t = b.child(v, "treatment");
            let m = b.child(t, "medication");
            b.child_with_text(m, "diagnosis", if i % 3 == 0 { "flu" } else { "heart disease" });
        }
        let small = b.child(root, "department");
        let p = b.child(small, "patient");
        b.child_with_text(p, "pname", "Carol");
        b.finish()
    }

    /// Like [`skewed_doc`], but the dominant subtree's bulk hides one
    /// level deeper — forcing a spine *inside* a spine.
    fn nested_skew_doc() -> XmlTree {
        let mut b = XmlTreeBuilder::new();
        let root = b.root("hospital");
        let dept = b.child(root, "department");
        let big_ward = b.child(dept, "ward");
        for i in 0..290 {
            let p = b.child(big_ward, "patient");
            b.child_with_text(p, "pname", if i % 2 == 0 { "Alice" } else { "Bob" });
            let v = b.child(p, "visit");
            let t = b.child(v, "treatment");
            let m = b.child(t, "medication");
            b.child_with_text(m, "diagnosis", "flu");
        }
        let small_ward = b.child(dept, "ward");
        for _ in 0..3 {
            let p = b.child(small_ward, "patient");
            b.child_with_text(p, "pname", "Carol");
        }
        b.finish()
    }

    #[test]
    fn solo_matches_sequential_at_every_budget() {
        let doc = doc();
        for query in ["//diagnosis", "department/patient/pname", "doctor"] {
            let compiled = ir(query);
            let sequential = crate::evaluate_compiled(&doc, &compiled);
            for threads in [0, 1, 2, 5, 64] {
                let parallel = evaluate_parallel(&doc, &compiled, threads);
                assert_eq!(parallel.answers, sequential.answers, "`{query}` @{threads}");
                assert_eq!(parallel.stats, sequential.stats, "`{query}` @{threads}");
            }
        }
    }

    #[test]
    fn batch_matches_sequential_including_aggregate_stats() {
        let doc = doc();
        let queries: Vec<CompiledBatchQuery> = ["//diagnosis", "department/patient/pname"]
            .iter()
            .map(|q| CompiledBatchQuery::new(ir(q)))
            .collect();
        let sequential = evaluate_batch_compiled(&doc, &queries);
        for threads in [1, 2, 8] {
            let parallel = evaluate_batch_parallel(&doc, &queries, threads);
            assert_eq!(parallel.stats, sequential.stats, "@{threads}");
            for (p, s) in parallel.results.iter().zip(&sequential.results) {
                assert_eq!(p.answers, s.answers, "@{threads}");
                assert_eq!(p.stats, s.stats, "@{threads}");
            }
        }
    }

    #[test]
    fn resplitting_matches_sequential_on_skewed_doc() {
        let doc = skewed_doc();
        for query in ["//diagnosis", "department/patient/pname", "//patient[visit]"] {
            let compiled = ir(query);
            let sequential = crate::evaluate_compiled(&doc, &compiled);
            for threads in [1, 2, 4, 8] {
                let parallel = evaluate_parallel(&doc, &compiled, threads);
                assert_eq!(parallel.answers, sequential.answers, "`{query}` @{threads}");
                assert_eq!(parallel.stats, sequential.stats, "`{query}` @{threads}");
            }
        }
    }

    #[test]
    fn nested_spines_match_sequential() {
        let doc = nested_skew_doc();
        let queries: Vec<CompiledBatchQuery> =
            ["//diagnosis", "department/ward/patient/pname", "//patient"]
                .iter()
                .map(|q| CompiledBatchQuery::new(ir(q)))
                .collect();
        let sequential = evaluate_batch_compiled(&doc, &queries);
        for threads in [1, 2, 4, 8] {
            let parallel = evaluate_batch_parallel(&doc, &queries, threads);
            assert_eq!(parallel.stats, sequential.stats, "@{threads}");
            for (p, s) in parallel.results.iter().zip(&sequential.results) {
                assert_eq!(p.answers, s.answers, "@{threads}");
                assert_eq!(p.stats, s.stats, "@{threads}");
            }
        }
        // The dominant chain really is split twice: department, then ward.
        let compiled = ir("//diagnosis");
        let q = [CompiledBatchQuery::new(compiled)];
        let (plan, _seeds) = plan_for(&doc, &q, 4);
        assert!(plan.spines.len() >= 2, "nested spines expected");
    }

    /// Builds the shard plan the evaluator would use, for plan-shape tests.
    fn plan_for<'a>(
        tree: &'a XmlTree,
        queries: &'a [CompiledBatchQuery<'a>],
        threads: usize,
    ) -> (ShardPlan<'a>, Vec<ContextSeed>) {
        let runtimes: Vec<QueryRuntime> = queries
            .iter()
            .map(|q| QueryRuntime::new(tree.labels(), Arc::clone(&q.compiled), q.index))
            .collect();
        let mut core = HypeCore::new(runtimes);
        assert!(core.open(tree.root(), tree.label(tree.root())));
        let seeds = core.context_seeds();
        let plan = plan_shards(
            tree,
            tree.root(),
            queries,
            seeds.clone(),
            threads,
            tree.subtree_size(tree.root()),
        );
        (plan, seeds)
    }

    #[test]
    fn two_subtree_doc_occupies_four_workers_after_resplitting() {
        // Regression for the pre-splitting cap `threads.min(children.len())`:
        // a two-subtree document saturated at two workers no matter the
        // budget. Re-splitting the dominant subtree yields enough tasks for
        // the full budget.
        let doc = skewed_doc();
        assert_eq!(doc.children(doc.root()).len(), 2);
        let queries = [CompiledBatchQuery::new(ir("//diagnosis"))];
        let threads = 4;
        let (plan, _seeds) = plan_for(&doc, &queries, threads);
        assert!(!plan.spines.is_empty(), "the dominant subtree is re-split");
        assert!(
            plan.tasks.len() >= threads,
            "re-splitting yields at least one task per worker ({} tasks)",
            plan.tasks.len()
        );
        assert_eq!(threads.min(plan.tasks.len()), 4, "all four workers occupied");
    }

    #[test]
    fn skewed_run_reports_shard_fraction() {
        let doc = skewed_doc();
        let compiled = ir("//diagnosis");
        let sequential = crate::evaluate_compiled(&doc, &compiled);
        assert_eq!(sequential.stats.max_shard_fraction, 0.0);
        let parallel = evaluate_parallel(&doc, &compiled, 4);
        let frac = parallel.stats.max_shard_fraction;
        assert!(frac > 0.0 && frac <= 1.0, "fraction in (0, 1]: {frac}");
        // Re-splitting bounds every task well below the dominant subtree's
        // ~99% share of the document.
        assert!(frac < 0.5, "no task dominates after re-splitting: {frac}");
    }

    #[test]
    fn deque_owner_pops_lifo_and_thief_steals_fifo() {
        let d = TaskDeque::new(vec![10, 11, 12]);
        assert_eq!(d.steal(), Steal::Success(10));
        assert_eq!(d.pop(), Some(12));
        assert_eq!(d.pop(), Some(11));
        assert_eq!(d.pop(), None);
        assert_eq!(d.steal(), Steal::Empty);

        let d = TaskDeque::new(Vec::new());
        assert_eq!(d.pop(), None);
        assert_eq!(d.steal(), Steal::Empty);
    }

    #[test]
    fn deque_concurrent_drain_yields_each_item_exactly_once() {
        const ITEMS: usize = 10_000;
        const THIEVES: usize = 3;
        let d = TaskDeque::new((0..ITEMS).collect());
        let mut claimed: Vec<Vec<usize>> = Vec::new();
        thread::scope(|scope| {
            let thieves: Vec<_> = (0..THIEVES)
                .map(|_| {
                    let d = &d;
                    scope.spawn(move || {
                        let mut got = Vec::new();
                        loop {
                            match d.steal() {
                                Steal::Success(i) => got.push(i),
                                Steal::Retry => std::hint::spin_loop(),
                                Steal::Empty => break,
                            }
                        }
                        got
                    })
                })
                .collect();
            let mut own = Vec::new();
            while let Some(i) = d.pop() {
                own.push(i);
            }
            claimed.push(own);
            for t in thieves {
                claimed.push(t.join().unwrap());
            }
        });
        let mut all: Vec<usize> = claimed.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..ITEMS).collect::<Vec<_>>());
    }

    #[test]
    fn single_node_context_has_no_shards() {
        let doc = doc();
        let compiled = ir("diagnosis");
        let leaf = doc
            .node_ids()
            .find(|&n| doc.children(n).is_empty())
            .expect("tree has leaves");
        let sequential = evaluate_compiled_at_with(&doc, leaf, &compiled, None);
        let parallel = evaluate_parallel_at_with(&doc, leaf, &compiled, None, 8);
        assert_eq!(parallel.answers, sequential.answers);
        assert_eq!(parallel.stats, sequential.stats);
    }

    #[test]
    fn indexed_pruning_matches_sequential() {
        let doc = doc();
        let dtd = hospital_document_dtd();
        let mfa = compile_query(&parse_path("//diagnosis").unwrap());
        let compiled = Arc::new(CompiledMfa::new(&mfa));
        let index = ReachabilityIndex::new(&mfa, &dtd, doc.labels());
        let sequential = evaluate_compiled_at_with(&doc, doc.root(), &compiled, Some(&index));
        for threads in [1, 3] {
            let parallel =
                evaluate_parallel_at_with(&doc, doc.root(), &compiled, Some(&index), threads);
            assert_eq!(parallel.answers, sequential.answers, "@{threads}");
            assert_eq!(parallel.stats, sequential.stats, "@{threads}");
        }
    }

    #[test]
    fn indexed_pruning_matches_sequential_on_skewed_doc() {
        // Spine probes run the same pruning logic as the sequential walk;
        // a pruned spine candidate must fall back to a leaf task with
        // identical statistics.
        let doc = skewed_doc();
        let dtd = hospital_document_dtd();
        let mfa = compile_query(&parse_path("//diagnosis").unwrap());
        let compiled = Arc::new(CompiledMfa::new(&mfa));
        let index = ReachabilityIndex::new(&mfa, &dtd, doc.labels());
        let sequential = evaluate_compiled_at_with(&doc, doc.root(), &compiled, Some(&index));
        for threads in [1, 4] {
            let parallel =
                evaluate_parallel_at_with(&doc, doc.root(), &compiled, Some(&index), threads);
            assert_eq!(parallel.answers, sequential.answers, "@{threads}");
            assert_eq!(parallel.stats, sequential.stats, "@{threads}");
        }
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let doc = doc();
        let batch = evaluate_batch_parallel(&doc, &[], 4);
        assert!(batch.results.is_empty());
        assert_eq!(batch.stats.queries, 0);
        assert_eq!(batch.stats.nodes_visited, 0);
        assert_eq!(batch.stats.nodes_total, doc.len());
    }

    #[test]
    fn mirrors_sequential_batch_with_builder_queries() {
        // Cross-check against the builder-MFA convenience path too.
        let doc = doc();
        let mfa = compile_query(&parse_path("department/patient[visit]").unwrap());
        let sequential = crate::evaluate_batch(&doc, &[BatchQuery::new(&mfa)]);
        let parallel =
            evaluate_batch_parallel(&doc, &[CompiledBatchQuery::new(Arc::new(CompiledMfa::new(&mfa)))], 2);
        assert_eq!(parallel.results[0].answers, sequential.results[0].answers);
        assert_eq!(parallel.results[0].stats, sequential.results[0].stats);
    }
}
