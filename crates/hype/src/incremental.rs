//! Incremental HyPE re-evaluation over edited documents.
//!
//! A HyPE pass couples a top-level subtree to the rest of the evaluation
//! only through the context frame: the frame's pending states are fixed
//! before any child is visited, children feed back exclusively by OR-ing
//! filter-value rows into the context accumulators, and every candidate-DAG
//! edge points strictly downwards. [`crate::parallel`] exploits that to
//! shard one evaluation across threads; this module exploits it **across
//! time**. An [`IncrementalEvaluator`] caches each top-level subtree's
//! shard outputs (the internal runtime's seed/absorb/extract contract — the
//! same one the parallel workers speak) and, after a subtree edit, re-runs
//! the pass on only the edited top-level subtree(s), splicing the fresh
//! outputs into the cached remainder.
//!
//! The merge is **bit-identical to from-scratch evaluation**: every
//! [`HypeStats`](crate::HypeStats)/[`BatchStats`] counter is a sum of per-node contributions
//! that depend only on the context seed and the subtree's content, answer
//! sets are `BTreeSet` unions in pre-order index order, and node ids are
//! stable under edits (deletion tombstones, insertion appends — see
//! `smoqe_xml::tree`), so a cached shard output is *the same value* a fresh
//! walk of that unchanged subtree would produce. The `incremental`
//! differential suite asserts answers and statistics equality after every
//! step of random edit scripts at several thread budgets.
//!
//! ## What an edit dirties
//!
//! [`IncrementalEvaluator::apply_edits`] routes each [`EditOp`] **before**
//! applying it (while its anchor node is still live):
//!
//! * an op strictly below the context dirties exactly the top-level subtree
//!   on the path from its anchor to the context;
//! * inserting directly under the context creates a new top-level subtree,
//!   discovered (and evaluated) after the edit;
//! * deleting a top-level subtree just drops its cached output;
//! * replacing the context node itself re-roots the evaluator at the
//!   replacement and recomputes everything;
//! * ops entirely outside the context subtree dirty nothing (the interner
//!   may still grow; runtimes are rebuilt per call and label columns are
//!   document-wide);
//! * deleting or replacing a *strict ancestor* of the context would
//!   tombstone the context itself and is rejected.
//!
//! ## Index caveat
//!
//! A [`ReachabilityIndex`] is keyed to the document's label-interner
//! layout. Edits that introduce **new labels** grow the interner, and a
//! pre-edit index knows nothing about the new label ids; callers that prune
//! with an index must swap in one built for the grown interner (the `smoqe`
//! service layer does exactly that, keyed by label fingerprint) before
//! re-evaluating. [`IncrementalEvaluator::set_index`] installs the
//! replacement without disturbing cached shard outputs — pruning decisions
//! are deterministic per subtree, so cached outputs of *unchanged* subtrees
//! remain exact as long as the index describes the same DTD.

use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::Ordering;
use std::sync::Arc;

use smoqe_automata::CompiledMfa;
use smoqe_xml::{EditOp, NodeId, XmlError, XmlTree};

use crate::batch::{walk, BatchResult, BatchStats};
use crate::index::ReachabilityIndex;
use crate::parallel::{claim_parallel, finalize_queries, resolve_threads};
use crate::runtime::{HypeCore, QueryRuntime, ShardQueryOutput};

/// One query evaluated incrementally: the compiled execution IR plus an
/// optional reachability index, both owned (`Arc`) so the evaluator can
/// outlive the caller's borrows across edit generations.
#[derive(Debug, Clone)]
pub struct IncrementalQuery {
    /// The compiled MFA execution IR.
    pub compiled: Arc<CompiledMfa>,
    /// Optional OptHyPE(-C) pruning index; must describe the document's
    /// current label-interner layout (see the module docs).
    pub index: Option<Arc<ReachabilityIndex>>,
}

impl IncrementalQuery {
    /// A query without pruning index.
    pub fn new(compiled: Arc<CompiledMfa>) -> Self {
        Self {
            compiled,
            index: None,
        }
    }

    /// A query pruned through `index`.
    pub fn with_index(compiled: Arc<CompiledMfa>, index: Arc<ReachabilityIndex>) -> Self {
        Self {
            compiled,
            index: Some(index),
        }
    }
}

/// Cached artefacts of one top-level subtree: the per-query shard outputs
/// plus the shard's physical visit count, exactly what a parallel worker
/// would have produced for this subtree alone.
struct ShardState {
    outputs: Vec<ShardQueryOutput>,
    physical_visits: usize,
}

/// A batch of queries held open over an evolving document, re-evaluated
/// incrementally after subtree edits.
///
/// ```
/// use std::sync::Arc;
/// use smoqe_automata::{compile_query, CompiledMfa};
/// use smoqe_hype::incremental::{IncrementalEvaluator, IncrementalQuery};
/// use smoqe_hype::{evaluate_batch_parallel, CompiledBatchQuery};
/// use smoqe_xml::{parse_document, EditOp};
/// use smoqe_xpath::parse_path;
///
/// let mut doc = parse_document(
///     "<hospital><department><patient><pname>Alice</pname></patient></department>\
///      <department/></hospital>",
/// )
/// .unwrap();
/// let ir = Arc::new(CompiledMfa::new(&compile_query(&parse_path("//pname").unwrap())));
/// let (mut eval, first) =
///     IncrementalEvaluator::new(&doc, doc.root(), vec![IncrementalQuery::new(Arc::clone(&ir))], 1);
///
/// let dept = doc.children(doc.root())[1];
/// let op = EditOp::Insert {
///     parent: dept,
///     position: 0,
///     subtree: parse_document("<patient><pname>Bob</pname></patient>").unwrap(),
/// };
/// let incremental = eval.apply_edits(&mut doc, &[op], 1).unwrap();
///
/// // Bit-identical to evaluating the edited document from scratch.
/// let scratch = evaluate_batch_parallel(&doc, &[CompiledBatchQuery::new(ir)], 1);
/// assert_eq!(incremental.results[0].answers, scratch.results[0].answers);
/// assert_eq!(incremental.results[0].stats, scratch.results[0].stats);
/// assert_eq!(incremental.stats, scratch.stats);
/// assert!(first.results[0].answers.len() < incremental.results[0].answers.len());
/// ```
pub struct IncrementalEvaluator {
    queries: Vec<IncrementalQuery>,
    context: NodeId,
    shards: HashMap<NodeId, ShardState>,
}

impl IncrementalEvaluator {
    /// Evaluates `queries` at `context` from scratch and returns the
    /// evaluator (holding every top-level subtree's cached outputs)
    /// together with the initial [`BatchResult`].
    pub fn new(
        tree: &XmlTree,
        context: NodeId,
        queries: Vec<IncrementalQuery>,
        threads: usize,
    ) -> (Self, BatchResult) {
        let mut this = Self {
            queries,
            context,
            shards: HashMap::new(),
        };
        let result = this.reevaluate(tree, None, threads);
        (this, result)
    }

    /// The node the evaluation context is anchored at. Follows root
    /// replacement (see [`IncrementalEvaluator::apply_edits`]).
    pub fn context(&self) -> NodeId {
        self.context
    }

    /// Number of top-level subtrees with cached outputs.
    pub fn cached_shards(&self) -> usize {
        self.shards.len()
    }

    /// Replaces query `query`'s pruning index (e.g. after a label-adding
    /// edit changed the document's interner layout). Cached outputs of
    /// unchanged subtrees stay valid: pruning is deterministic per subtree,
    /// so as long as the new index describes the same DTD over the grown
    /// interner, a fresh walk would reproduce the cached artefacts.
    pub fn set_index(&mut self, query: usize, index: Option<Arc<ReachabilityIndex>>) {
        self.queries[query].index = index;
    }

    /// Applies `ops` to `tree` and re-evaluates only the dirtied top-level
    /// subtrees, splicing their fresh outputs into the cached remainder.
    ///
    /// Results — per-query answers and [`HypeStats`](crate::HypeStats),
    /// and the aggregate [`BatchStats`] — are bit-identical to a from-scratch
    /// [`crate::evaluate_batch_parallel_at`] of the edited tree.
    ///
    /// # Errors
    /// Fails (leaving `tree` with all ops up to the failing one applied,
    /// like `XmlTree::apply_script`) if an op is invalid, or if an op would
    /// tombstone the evaluation context (deleting the context or
    /// deleting/replacing a strict ancestor of it). Replacing the context
    /// node itself is allowed: the evaluator re-roots at the replacement.
    pub fn apply_edits(
        &mut self,
        tree: &mut XmlTree,
        ops: &[EditOp],
        threads: usize,
    ) -> Result<BatchResult, XmlError> {
        let mut dirty: BTreeSet<NodeId> = BTreeSet::new();
        let mut full = false;
        for op in ops {
            let anchor = op.anchor();
            let removes_subtree = matches!(op, EditOp::Delete { .. } | EditOp::Replace { .. });
            if removes_subtree
                && anchor != self.context
                && is_ancestor_or_self(tree, anchor, self.context)
            {
                return Err(XmlError::InvalidContent {
                    element: tree.label_name(anchor).to_owned(),
                    reason: "edit would tombstone the evaluation context".to_owned(),
                });
            }
            if anchor == self.context {
                match op {
                    // A new top-level subtree; discovered after the edit.
                    EditOp::Insert { .. } => {}
                    EditOp::Delete { .. } => {
                        return Err(XmlError::InvalidContent {
                            element: tree.label_name(anchor).to_owned(),
                            reason: "edit would tombstone the evaluation context".to_owned(),
                        });
                    }
                    EditOp::Replace { .. } => full = true,
                }
            } else if let Some(top) = top_level_shard(tree, self.context, anchor) {
                dirty.insert(top);
            }
            let new_root = tree.apply(op)?;
            if full {
                if let (EditOp::Replace { node, .. }, Some(new_root)) = (op, new_root) {
                    if *node == self.context {
                        self.context = new_root;
                    }
                }
            }
        }
        let dirty = if full { None } else { Some(dirty) };
        Ok(self.reevaluate(tree, dirty.as_ref(), threads))
    }

    /// Drops every cached output and re-evaluates from scratch — the
    /// recovery path when the document was edited behind the evaluator's
    /// back.
    pub fn refresh(&mut self, tree: &XmlTree, threads: usize) -> BatchResult {
        self.reevaluate(tree, None, threads)
    }

    /// Recomputes dirty/new top-level subtrees (all of them when `dirty` is
    /// `None`), then merges cached + fresh outputs through the context.
    fn reevaluate(
        &mut self,
        tree: &XmlTree,
        dirty: Option<&BTreeSet<NodeId>>,
        threads: usize,
    ) -> BatchResult {
        let context = self.context;
        let nodes_total = tree.subtree_size(context);
        if self.queries.is_empty() {
            return BatchResult {
                results: Vec::new(),
                stats: BatchStats {
                    queries: 0,
                    nodes_total,
                    nodes_visited: 0,
                    sequential_node_visits: 0,
                },
            };
        }
        let threads = resolve_threads(threads);
        let children: Vec<NodeId> = tree.children(context).to_vec();
        // Field borrow (not a method call) so `self.shards` stays mutable
        // while the runtimes hold `self.queries`' index references.
        let queries = &self.queries;

        // Retire shards for subtrees that are gone or dirty; whatever is
        // left in the cache is exact for the edited tree.
        match dirty {
            None => self.shards.clear(),
            Some(dirty) => {
                self.shards
                    .retain(|child, _| children.contains(child) && !dirty.contains(child));
            }
        }
        let todo: Vec<NodeId> = children
            .iter()
            .copied()
            .filter(|c| !self.shards.contains_key(c))
            .collect();

        // Open the context on the calling thread, exactly as the parallel
        // evaluator does, with runtimes over the *current* interner.
        let mut core = HypeCore::new(build_runtimes(queries, tree));
        let opened = core.open(context, tree.label(context));
        debug_assert!(opened, "the evaluation context is never pruned");
        let seeds = core.context_seeds();

        // Recompute dirty subtrees, one core per subtree (not per worker) so
        // each subtree's outputs are individually cacheable.
        if !todo.is_empty() {
            let workers = threads.min(todo.len());
            let computed = claim_parallel(workers, |next| {
                let mut mine: Vec<(NodeId, ShardState)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&child) = todo.get(i) else {
                        break;
                    };
                    let mut shard_core = HypeCore::new(build_runtimes(queries, tree));
                    shard_core.seed_context_frame(context, &seeds);
                    walk(&mut shard_core, tree, child);
                    let (outputs, physical_visits) = shard_core.into_shard_outputs();
                    mine.push((
                        child,
                        ShardState {
                            outputs,
                            physical_visits,
                        },
                    ));
                }
                mine
            });
            for (child, state) in computed.into_iter().flatten() {
                self.shards.insert(child, state);
            }
        }

        // Fold every subtree's value rows — cached and fresh alike — into
        // the real context frame (OR is order-free) and close it.
        for child in &children {
            let state = &self.shards[child];
            for (query, sq) in state.outputs.iter().enumerate() {
                core.absorb_child_values(query, &sq.acc_any, &sq.acc);
            }
        }
        core.close(tree.text(context));
        let (blocks, context_physical) = core.into_context_parts();

        let results = finalize_queries(
            blocks,
            |query| {
                children
                    .iter()
                    .map(|c| &self.shards[c].outputs[query])
                    .collect()
            },
            nodes_total,
            threads,
        );

        let nodes_visited = context_physical
            + children
                .iter()
                .map(|c| self.shards[c].physical_visits)
                .sum::<usize>();
        let sequential_node_visits = results.iter().map(|r| r.stats.nodes_visited).sum();
        BatchResult {
            results,
            stats: BatchStats {
                queries: self.queries.len(),
                nodes_total,
                nodes_visited,
                sequential_node_visits,
            },
        }
    }

}

/// Fresh per-query runtimes over the tree's current interner.
fn build_runtimes<'a>(
    queries: &'a [IncrementalQuery],
    tree: &'a XmlTree,
) -> Vec<QueryRuntime<'a>> {
    queries
        .iter()
        .map(|q| QueryRuntime::new(tree.labels(), Arc::clone(&q.compiled), q.index.as_deref()))
        .collect()
}

/// Returns `true` if `node` is `candidate` or one of its ancestors.
fn is_ancestor_or_self(tree: &XmlTree, node: NodeId, candidate: NodeId) -> bool {
    let mut cur = candidate;
    loop {
        if cur == node {
            return true;
        }
        match tree.parent(cur) {
            Some(p) => cur = p,
            None => return false,
        }
    }
}

/// Routes a node strictly below `context` to the top-level subtree (direct
/// child of `context`) containing it; `None` when the node is the context
/// itself or outside the context subtree entirely.
fn top_level_shard(tree: &XmlTree, context: NodeId, node: NodeId) -> Option<NodeId> {
    if node == context {
        return None;
    }
    let mut cur = node;
    while let Some(p) = tree.parent(cur) {
        if p == context {
            return Some(cur);
        }
        cur = p;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::CompiledBatchQuery;
    use crate::parallel::evaluate_batch_parallel_at;
    use smoqe_automata::compile_query;
    use smoqe_xml::parse_document;
    use smoqe_xpath::parse_path;

    fn ir(query: &str) -> Arc<CompiledMfa> {
        Arc::new(CompiledMfa::new(&compile_query(&parse_path(query).unwrap())))
    }

    fn doc() -> XmlTree {
        parse_document(
            "<hospital>\
             <department><patient><pname>Alice</pname><visit><treatment>\
             <medication><diagnosis>heart disease</diagnosis></medication>\
             </treatment></visit></patient></department>\
             <department><patient><pname>Bob</pname></patient></department>\
             <department/>\
             </hospital>",
        )
        .unwrap()
    }

    fn queries() -> Vec<IncrementalQuery> {
        ["//pname", "//diagnosis", "department/patient"]
            .iter()
            .map(|q| IncrementalQuery::new(ir(q)))
            .collect()
    }

    fn assert_matches_scratch(tree: &XmlTree, context: NodeId, got: &BatchResult) {
        let scratch_queries: Vec<CompiledBatchQuery> = queries()
            .into_iter()
            .map(|q| CompiledBatchQuery::new(q.compiled))
            .collect();
        let want = evaluate_batch_parallel_at(tree, context, &scratch_queries, 1);
        assert_eq!(got.stats, want.stats, "aggregate stats");
        for (g, w) in got.results.iter().zip(&want.results) {
            assert_eq!(g.answers, w.answers);
            assert_eq!(g.stats, w.stats);
        }
    }

    #[test]
    fn initial_evaluation_matches_scratch() {
        let tree = doc();
        let (eval, result) = IncrementalEvaluator::new(&tree, tree.root(), queries(), 2);
        assert_eq!(eval.cached_shards(), 3);
        assert_matches_scratch(&tree, tree.root(), &result);
    }

    #[test]
    fn insert_below_dirties_one_shard() {
        let mut tree = doc();
        let (mut eval, _) = IncrementalEvaluator::new(&tree, tree.root(), queries(), 1);
        let dept2 = tree.children(tree.root())[1];
        let patient = tree.children(dept2)[0];
        let op = EditOp::Insert {
            parent: patient,
            position: 0,
            subtree: parse_document("<visit><treatment/></visit>").unwrap(),
        };
        let result = eval.apply_edits(&mut tree, &[op], 1).unwrap();
        assert_matches_scratch(&tree, eval.context(), &result);
    }

    #[test]
    fn delete_top_level_child_drops_its_shard() {
        let mut tree = doc();
        let (mut eval, _) = IncrementalEvaluator::new(&tree, tree.root(), queries(), 1);
        let dept1 = tree.children(tree.root())[0];
        let result = eval
            .apply_edits(&mut tree, &[EditOp::Delete { node: dept1 }], 1)
            .unwrap();
        assert_eq!(eval.cached_shards(), 2);
        assert_matches_scratch(&tree, eval.context(), &result);
        assert!(result.results[1].answers.is_empty(), "diagnosis was deleted");
    }

    #[test]
    fn insert_under_context_adds_a_shard() {
        let mut tree = doc();
        let (mut eval, _) = IncrementalEvaluator::new(&tree, tree.root(), queries(), 1);
        let op = EditOp::Insert {
            parent: tree.root(),
            position: 3,
            subtree: parse_document("<department><patient><pname>Dora</pname></patient></department>")
                .unwrap(),
        };
        let result = eval.apply_edits(&mut tree, &[op], 1).unwrap();
        assert_eq!(eval.cached_shards(), 4);
        assert_matches_scratch(&tree, eval.context(), &result);
    }

    #[test]
    fn replace_context_reroots_the_evaluator() {
        let mut tree = doc();
        let (mut eval, _) = IncrementalEvaluator::new(&tree, tree.root(), queries(), 1);
        let op = EditOp::Replace {
            node: tree.root(),
            subtree: parse_document("<hospital><department><patient><pname>Eve</pname></patient></department></hospital>")
                .unwrap(),
        };
        let result = eval.apply_edits(&mut tree, &[op], 1).unwrap();
        assert_eq!(eval.context(), tree.root());
        assert_matches_scratch(&tree, eval.context(), &result);
    }

    #[test]
    fn removing_the_context_is_rejected() {
        let mut tree = doc();
        let dept1 = tree.children(tree.root())[0];
        let patient = tree.children(dept1)[0];
        let (mut eval, _) = IncrementalEvaluator::new(&tree, patient, queries(), 1);
        let err = eval
            .apply_edits(&mut tree, &[EditOp::Delete { node: dept1 }], 1)
            .unwrap_err();
        assert!(err.to_string().contains("context"));
        let err = eval
            .apply_edits(&mut tree, &[EditOp::Delete { node: patient }], 1)
            .unwrap_err();
        assert!(err.to_string().contains("context"));
    }

    #[test]
    fn edits_outside_the_context_dirty_nothing() {
        let mut tree = doc();
        let dept1 = tree.children(tree.root())[0];
        let (mut eval, first) = IncrementalEvaluator::new(&tree, dept1, queries(), 1);
        let dept2 = tree.children(tree.root())[1];
        let op = EditOp::Insert {
            parent: dept2,
            position: 1,
            subtree: parse_document("<patient><pname>Frank</pname></patient>").unwrap(),
        };
        let result = eval.apply_edits(&mut tree, &[op], 1).unwrap();
        assert_matches_scratch(&tree, dept1, &result);
        assert_eq!(result.results[0].answers, first.results[0].answers);
    }

    #[test]
    fn multi_op_scripts_and_thread_budgets_stay_bit_identical() {
        for threads in [1, 2, 8] {
            let mut tree = doc();
            let (mut eval, _) =
                IncrementalEvaluator::new(&tree, tree.root(), queries(), threads);
            let dept3 = tree.children(tree.root())[2];
            let dept1 = tree.children(tree.root())[0];
            let ops = vec![
                EditOp::Insert {
                    parent: dept3,
                    position: 0,
                    subtree: parse_document(
                        "<patient><pname>Grace</pname><visit><treatment><medication>\
                         <diagnosis>flu</diagnosis></medication></treatment></visit></patient>",
                    )
                    .unwrap(),
                },
                EditOp::Replace {
                    node: dept1,
                    subtree: parse_document("<department/>").unwrap(),
                },
            ];
            let result = eval.apply_edits(&mut tree, &ops, threads).unwrap();
            assert_matches_scratch(&tree, eval.context(), &result);
        }
    }

    #[test]
    fn empty_query_set_reports_totals_only() {
        let tree = doc();
        let (_, result) = IncrementalEvaluator::new(&tree, tree.root(), Vec::new(), 2);
        assert!(result.results.is_empty());
        assert_eq!(result.stats.nodes_total, tree.len());
        assert_eq!(result.stats.nodes_visited, 0);
    }
}
