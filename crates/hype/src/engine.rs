//! The HyPE evaluation engine (Fig. 6 of the paper).
//!
//! One depth-first pass over the document drives the selecting NFA
//! (`mstates`), propagates pending filter states downwards (`fstates↓`),
//! computes filter values upwards (`fstates↑`) as soon as the relevant
//! subtree is complete, and materialises the candidate-answer DAG `cans`.
//! A final traversal of `cans` — whose size is bounded by `|T|·|M|` but is
//! usually far smaller than `T` — produces the answer set.
//!
//! Pruning (the `OptHyPE` variants) additionally consults a
//! [`ReachabilityIndex`]: a subtree rooted at a child labelled `L` is
//! skipped outright when, given the labels the DTD allows below `L`,
//! (a) no selecting-NFA state pending at that child can reach a final
//! state, and (b) every pending filter state is necessarily false there.
//! Correctness of that rule assumes the document conforms to the DTD used
//! to build the index, which is the same assumption the paper makes.
//!
//! Since the batching PR there is a single implementation of the traversal:
//! [`crate::batch`] drives N queries through one pass, and the solo entry
//! points below are the 1-query special case of it. Since the execution-IR
//! PR that single implementation runs on the bitset-based
//! [`CompiledMfa`] rather than interpreting the builder [`Mfa`] directly;
//! the pre-IR engines survive in [`crate::interpreted`] as the differential
//! oracle. This keeps the hot path in one place and makes "batched equals
//! sequential" true by construction for the solo/batch pair (the
//! integration suite still checks it end-to-end over the whole query
//! corpus).

use std::collections::BTreeSet;
use std::sync::Arc;

use smoqe_automata::{CompiledMfa, Mfa};
use smoqe_xml::{NodeId, XmlTree};

use crate::batch::{evaluate_batch_at, BatchQuery, CompiledBatchQuery};
use crate::index::ReachabilityIndex;

/// Execution statistics of one HyPE run, used to reproduce the paper's
/// pruning measurements ("HyPE prunes, on average, 78.2% of the element
/// nodes, OptHyPE 88%").
///
/// Accounting contract (relied on by the benchmark harness and locked in by
/// unit tests):
///
/// * `nodes_total` counts the element nodes of the **evaluated subtree** —
///   the whole document for [`evaluate`], the context's subtree for
///   [`evaluate_at`] — never the whole arena.
/// * `nodes_visited` counts every node the traversal actually entered, and a
///   subtree skipped by pruning contributes zero, in **every** mode; HyPE
///   and OptHyPE therefore share the same denominator and their
///   [`pruned_fraction`](Self::pruned_fraction) values are directly
///   comparable.
#[derive(Debug, Clone, Copy, Default)]
pub struct HypeStats {
    /// Number of element nodes in the evaluated subtree.
    pub nodes_total: usize,
    /// Number of element nodes actually visited by the traversal.
    pub nodes_visited: usize,
    /// Number of vertices of the candidate-answer DAG `cans`.
    pub cans_vertices: usize,
    /// Number of edges of `cans`.
    pub cans_edges: usize,
    /// Number of Boolean filter variables (`X(node, state)`) computed.
    pub afa_values_computed: usize,
    /// Largest single work unit's share of the physically visited nodes in
    /// the parallel pass that produced this result, in `[0, 1]` — `0.0` for
    /// sequential, streamed and incremental runs. Pure scheduling
    /// observability (shard skew), dependent on the thread budget:
    /// **excluded from equality**, so parallel results still compare equal
    /// to sequential ones under the bit-identity contract.
    pub max_shard_fraction: f64,
}

// Equality covers the five evaluation counters only — `max_shard_fraction`
// describes how the work was *scheduled*, not what was computed, and the
// differential suites assert parallel == sequential stats.
impl PartialEq for HypeStats {
    fn eq(&self, other: &Self) -> bool {
        self.nodes_total == other.nodes_total
            && self.nodes_visited == other.nodes_visited
            && self.cans_vertices == other.cans_vertices
            && self.cans_edges == other.cans_edges
            && self.afa_values_computed == other.afa_values_computed
    }
}

impl Eq for HypeStats {}

impl HypeStats {
    /// Fraction of element nodes that were *not* visited (pruned), in `[0, 1]`.
    pub fn pruned_fraction(&self) -> f64 {
        if self.nodes_total == 0 {
            0.0
        } else {
            1.0 - self.nodes_visited as f64 / self.nodes_total as f64
        }
    }
}

/// The result of a HyPE run: the answer set and the run's statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HypeResult {
    /// The answer `n[[M]]`.
    pub answers: BTreeSet<NodeId>,
    /// Traversal statistics.
    pub stats: HypeStats,
}

/// Evaluates `mfa` at the root of `tree` with plain HyPE (no index).
pub fn evaluate(tree: &XmlTree, mfa: &Mfa) -> HypeResult {
    evaluate_at_with(tree, tree.root(), mfa, None)
}

/// Evaluates `mfa` at `context` with plain HyPE (no index).
pub fn evaluate_at(tree: &XmlTree, context: NodeId, mfa: &Mfa) -> HypeResult {
    evaluate_at_with(tree, context, mfa, None)
}

/// Evaluates `mfa` at the root of `tree` with an OptHyPE(-C) index.
pub fn evaluate_with_index(tree: &XmlTree, mfa: &Mfa, index: &ReachabilityIndex) -> HypeResult {
    evaluate_at_with(tree, tree.root(), mfa, Some(index))
}

/// Evaluates `mfa` at `context`, optionally with an OptHyPE(-C) index.
///
/// The builder MFA is compiled to its [`CompiledMfa`] execution IR on every
/// call; callers evaluating the same query repeatedly should compile once
/// and use [`evaluate_compiled_at_with`].
pub fn evaluate_at_with(
    tree: &XmlTree,
    context: NodeId,
    mfa: &Mfa,
    index: Option<&ReachabilityIndex>,
) -> HypeResult {
    let mut batch = evaluate_batch_at(tree, context, &[BatchQuery { mfa, index }]);
    batch.results.pop().expect("one result per batched query")
}

/// Evaluates a pre-compiled execution IR at the root of `tree` with plain
/// HyPE.
pub fn evaluate_compiled(tree: &XmlTree, compiled: &Arc<CompiledMfa>) -> HypeResult {
    evaluate_compiled_at_with(tree, tree.root(), compiled, None)
}

/// Evaluates a pre-compiled execution IR at `context`, optionally with an
/// OptHyPE(-C) index — the compile-once counterpart of
/// [`evaluate_at_with`].
pub fn evaluate_compiled_at_with(
    tree: &XmlTree,
    context: NodeId,
    compiled: &Arc<CompiledMfa>,
    index: Option<&ReachabilityIndex>,
) -> HypeResult {
    let query = CompiledBatchQuery {
        compiled: Arc::clone(compiled),
        index,
    };
    let mut batch = crate::batch::evaluate_batch_compiled_at(tree, context, &[query]);
    batch.results.pop().expect("one result per batched query")
}

#[cfg(test)]
mod tests {
    use super::*;
    use smoqe_automata::{compile_query, evaluate_mfa_at};
    use smoqe_xml::hospital::hospital_document_dtd;
    use smoqe_xml::{XmlTree, XmlTreeBuilder};
    use smoqe_xpath::parse_path;

    /// The view-shaped tree of the paper's Fig. 4.
    fn fig4_tree() -> XmlTree {
        let mut b = XmlTreeBuilder::new();
        let n1 = b.root("hospital");
        let n2 = b.child(n1, "patient");
        let n3 = b.child(n2, "parent");
        let n4 = b.child(n3, "patient");
        let n5 = b.child(n4, "parent");
        let n6 = b.child(n5, "patient");
        let rec = b.child(n6, "record");
        b.child_with_text(rec, "diagnosis", "lung disease");
        let n7 = b.child(n2, "record");
        b.child_with_text(n7, "diagnosis", "lung disease");
        let n9 = b.child(n1, "patient");
        let n10 = b.child(n9, "parent");
        let n11 = b.child(n10, "patient");
        let n12 = b.child(n11, "record");
        b.child_with_text(n12, "diagnosis", "heart disease");
        let n14 = b.child(n9, "record");
        b.child_with_text(n14, "diagnosis", "brain disease");
        b.finish()
    }

    /// A small document conforming to the hospital DTD, for index tests.
    fn hospital_doc() -> XmlTree {
        let mut b = XmlTreeBuilder::new();
        let root = b.root("hospital");
        let dept = b.child(root, "department");
        b.child_with_text(dept, "name", "Cardiology");
        for (name, diag) in [("Alice", "heart disease"), ("Bob", "flu"), ("Carol", "heart disease")] {
            let p = b.child(dept, "patient");
            b.child_with_text(p, "pname", name);
            let addr = b.child(p, "address");
            b.child_with_text(addr, "street", "s");
            b.child_with_text(addr, "city", "c");
            b.child_with_text(addr, "zip", "z");
            let v = b.child(p, "visit");
            b.child_with_text(v, "date", "2006-01-01");
            let t = b.child(v, "treatment");
            let m = b.child(t, "medication");
            b.child_with_text(m, "type", "tablet");
            b.child_with_text(m, "diagnosis", diag);
            let d = b.child(dept, "doctor");
            b.child_with_text(d, "dname", "Dr X");
            b.child_with_text(d, "specialty", "cardiology");
        }
        b.finish()
    }

    /// HyPE must agree with the naive MFA evaluator.
    fn assert_hype_matches_naive(tree: &XmlTree, query: &str) {
        let q = parse_path(query).unwrap();
        let mfa = compile_query(&q);
        let expected = evaluate_mfa_at(tree, tree.root(), &mfa);
        let basic = evaluate(tree, &mfa);
        assert_eq!(basic.answers, expected, "HyPE differs on `{query}`");
        assert!(basic.stats.nodes_visited <= basic.stats.nodes_total);
    }

    #[test]
    fn matches_naive_on_plain_paths() {
        let t = fig4_tree();
        assert_hype_matches_naive(&t, "patient");
        assert_hype_matches_naive(&t, "patient/parent/patient");
        assert_hype_matches_naive(&t, "patient/record/diagnosis");
    }

    #[test]
    fn matches_naive_on_stars_and_descendants() {
        let t = fig4_tree();
        assert_hype_matches_naive(&t, "(patient/parent)*/patient");
        assert_hype_matches_naive(&t, "//diagnosis");
        assert_hype_matches_naive(&t, "patient//record");
    }

    #[test]
    fn matches_naive_on_filters() {
        let t = fig4_tree();
        assert_hype_matches_naive(&t, "patient[record]");
        assert_hype_matches_naive(&t, "patient[not(record)]");
        assert_hype_matches_naive(&t, "patient[record/diagnosis/text()='brain disease']");
        assert_hype_matches_naive(
            &t,
            "(patient/parent)*/patient[(parent/patient)*/record/diagnosis[text()='heart disease']]",
        );
        assert_hype_matches_naive(
            &t,
            "patient[*//record/diagnosis/text()='heart disease']",
        );
        assert_hype_matches_naive(&t, "patient[record and not(parent)]");
        assert_hype_matches_naive(&t, "patient[record or parent]");
    }

    #[test]
    fn fig4_answer_is_nodes_9_and_11() {
        // The paper's running evaluation example: Q0 selects the two
        // patients on the heart-disease branch.
        let t = fig4_tree();
        let q = parse_path(
            "(patient/parent)*/patient[(parent/patient)*/record/diagnosis[text()='heart disease']]",
        )
        .unwrap();
        let mfa = compile_query(&q);
        let result = evaluate(&t, &mfa);
        let labels: Vec<&str> = result
            .answers
            .iter()
            .map(|&n| t.label_name(n))
            .collect();
        assert_eq!(result.answers.len(), 2);
        assert!(labels.iter().all(|&l| l == "patient"));
    }

    #[test]
    fn index_variants_agree_with_basic_hype() {
        let doc = hospital_doc();
        let dtd = hospital_document_dtd();
        for query in [
            "department/patient[visit/treatment/medication/diagnosis/text()='heart disease']",
            "department/patient/pname",
            "//diagnosis",
            "//zip",
            "department/patient[visit/treatment/test]",
            "department/doctor[specialty/text()='cardiology']/dname",
            "department/doctor[diagnosis]",
            "department/patient[not(visit)]",
        ] {
            let q = parse_path(query).unwrap();
            let mfa = compile_query(&q);
            let plain = evaluate(&doc, &mfa);
            let naive = evaluate_mfa_at(&doc, doc.root(), &mfa);
            assert_eq!(plain.answers, naive, "HyPE differs on `{query}`");
            let opt_index = ReachabilityIndex::new(&mfa, &dtd, doc.labels());
            let opt = evaluate_with_index(&doc, &mfa, &opt_index);
            let optc_index = ReachabilityIndex::new_compressed(&mfa, &dtd, doc.labels());
            let optc = evaluate_with_index(&doc, &mfa, &optc_index);
            assert_eq!(plain.answers, opt.answers, "OptHyPE differs on `{query}`");
            assert_eq!(plain.answers, optc.answers, "OptHyPE-C differs on `{query}`");
            assert!(
                opt.stats.nodes_visited <= plain.stats.nodes_visited,
                "index must not visit more nodes (`{query}`)"
            );
        }
    }

    #[test]
    fn pruning_skips_irrelevant_subtrees() {
        let doc = hospital_doc();
        let dtd = hospital_document_dtd();
        // The query only cares about pname; address/visit/doctor subtrees
        // are irrelevant and must be skipped even by basic HyPE.
        let q = parse_path("department/patient/pname").unwrap();
        let mfa = compile_query(&q);
        let basic = evaluate(&doc, &mfa);
        assert!(basic.stats.pruned_fraction() > 0.3, "basic pruning too weak");
        let index = ReachabilityIndex::new(&mfa, &dtd, doc.labels());
        let opt = evaluate_with_index(&doc, &mfa, &index);
        assert!(opt.stats.nodes_visited <= basic.stats.nodes_visited);
    }

    #[test]
    fn index_prunes_descendant_queries_that_basic_hype_cannot() {
        let doc = hospital_doc();
        let dtd = hospital_document_dtd();
        // `//zip`: plain HyPE must visit essentially the whole document (the
        // wildcard loop matches everything); OptHyPE knows from the DTD that
        // zip can only occur below address and skips everything else.
        let q = parse_path("//zip").unwrap();
        let mfa = compile_query(&q);
        let basic = evaluate(&doc, &mfa);
        let index = ReachabilityIndex::new(&mfa, &dtd, doc.labels());
        let opt = evaluate_with_index(&doc, &mfa, &index);
        assert_eq!(basic.answers, opt.answers);
        assert_eq!(basic.answers.len(), 3);
        assert!(
            opt.stats.nodes_visited * 2 < basic.stats.nodes_visited,
            "expected OptHyPE ({}) to visit far fewer nodes than HyPE ({})",
            opt.stats.nodes_visited,
            basic.stats.nodes_visited
        );
    }

    #[test]
    fn negated_filters_disable_unsafe_pruning() {
        let doc = hospital_doc();
        let dtd = hospital_document_dtd();
        // not(//diagnosis) is true at doctors even though no diagnosis can
        // occur below them; the index must not assume the filter is false.
        let q = parse_path("department/doctor[not(.//diagnosis)]").unwrap();
        let mfa = compile_query(&q);
        let basic = evaluate(&doc, &mfa);
        let index = ReachabilityIndex::new(&mfa, &dtd, doc.labels());
        let opt = evaluate_with_index(&doc, &mfa, &index);
        assert_eq!(basic.answers, opt.answers);
        assert_eq!(basic.answers.len(), 3, "all three doctors qualify");
    }

    #[test]
    fn evaluation_from_inner_context() {
        let t = fig4_tree();
        let q = parse_path("parent/patient[record/diagnosis/text()='heart disease']").unwrap();
        let mfa = compile_query(&q);
        for ctx in t.node_ids() {
            let expected = evaluate_mfa_at(&t, ctx, &mfa);
            let got = evaluate_at(&t, ctx, &mfa);
            assert_eq!(got.answers, expected, "context {ctx:?}");
        }
    }

    #[test]
    fn stats_are_populated() {
        let t = fig4_tree();
        let q = parse_path("(patient/parent)*/patient[record]").unwrap();
        let mfa = compile_query(&q);
        let r = evaluate(&t, &mfa);
        assert_eq!(r.stats.nodes_total, t.len());
        assert!(r.stats.nodes_visited > 0);
        assert!(r.stats.cans_vertices > 0);
        assert!(r.stats.afa_values_computed > 0);
        assert!(r.stats.pruned_fraction() >= 0.0 && r.stats.pruned_fraction() <= 1.0);
    }

    #[test]
    fn empty_answer_queries() {
        let t = fig4_tree();
        assert_hype_matches_naive(&t, "doctor");
        assert_hype_matches_naive(&t, "patient[visit]");
        let q = parse_path("doctor").unwrap();
        let mfa = compile_query(&q);
        let r = evaluate(&t, &mfa);
        assert!(r.answers.is_empty());
        // Nothing matches at the root's children, so only the root is visited.
        assert_eq!(r.stats.nodes_visited, 1);
    }

    // -----------------------------------------------------------------------
    // HypeStats accounting sweep (PR 2): the invariants documented on
    // `HypeStats` are locked in here so later evaluator changes cannot
    // silently break the pruning-percentage comparisons.
    // -----------------------------------------------------------------------

    #[test]
    fn evaluate_at_counts_totals_over_the_context_subtree() {
        // `nodes_total` must be the context's subtree size, not the arena
        // size, for every possible context node.
        let t = fig4_tree();
        let q = parse_path("parent/patient[record]").unwrap();
        let mfa = compile_query(&q);
        for ctx in t.node_ids() {
            let r = evaluate_at(&t, ctx, &mfa);
            assert_eq!(
                r.stats.nodes_total,
                t.subtree_size(ctx),
                "nodes_total must be the subtree size at {ctx:?}"
            );
            assert!(
                r.stats.nodes_visited <= r.stats.nodes_total,
                "visited {} > total {} at {ctx:?}",
                r.stats.nodes_visited,
                r.stats.nodes_total
            );
            assert!(r.stats.nodes_visited >= 1, "the context itself is always visited");
        }
    }

    #[test]
    fn pruned_fraction_is_comparable_across_modes() {
        // HyPE, OptHyPE and OptHyPE-C must share the same `nodes_total`
        // denominator and count skipped subtrees identically (as zero
        // visits), so the paper's 78.2% vs 88% comparison is meaningful.
        let doc = hospital_doc();
        let dtd = hospital_document_dtd();
        for query in [
            "department/patient/pname",
            "//zip",
            "department/patient[visit/treatment/medication/diagnosis/text()='heart disease']",
            "department/doctor[specialty/text()='cardiology']/dname",
        ] {
            let q = parse_path(query).unwrap();
            let mfa = compile_query(&q);
            let plain = evaluate(&doc, &mfa);
            let index = ReachabilityIndex::new(&mfa, &dtd, doc.labels());
            let opt = evaluate_with_index(&doc, &mfa, &index);
            let cindex = ReachabilityIndex::new_compressed(&mfa, &dtd, doc.labels());
            let optc = evaluate_with_index(&doc, &mfa, &cindex);
            assert_eq!(plain.stats.nodes_total, opt.stats.nodes_total, "on `{query}`");
            assert_eq!(plain.stats.nodes_total, optc.stats.nodes_total, "on `{query}`");
            assert_eq!(plain.stats.nodes_total, doc.len(), "root run counts the whole document");
            assert_eq!(
                opt.stats.nodes_visited, optc.stats.nodes_visited,
                "the two index flavours answer the same lookups on `{query}`"
            );
            assert!(
                opt.stats.pruned_fraction() >= plain.stats.pruned_fraction() - 1e-12,
                "OptHyPE must never prune less than HyPE on `{query}`"
            );
        }
    }

    #[test]
    fn pruned_fraction_handles_degenerate_subtrees() {
        let t = fig4_tree();
        let q = parse_path("diagnosis").unwrap();
        let mfa = compile_query(&q);
        // A leaf context: subtree of size 1, the context is visited, nothing
        // is pruned.
        let leaf = t
            .node_ids()
            .find(|&n| t.children(n).is_empty())
            .expect("tree has leaves");
        let r = evaluate_at(&t, leaf, &mfa);
        assert_eq!(r.stats.nodes_total, 1);
        assert_eq!(r.stats.nodes_visited, 1);
        assert_eq!(r.stats.pruned_fraction(), 0.0);
        // The zero-total guard.
        assert_eq!(HypeStats::default().pruned_fraction(), 0.0);
    }
}
