//! The HyPE evaluation engine (Fig. 6 of the paper).
//!
//! One depth-first pass over the document drives the selecting NFA
//! (`mstates`), propagates pending filter states downwards (`fstates↓`),
//! computes filter values upwards (`fstates↑`) as soon as the relevant
//! subtree is complete, and materialises the candidate-answer DAG `cans`.
//! A final traversal of `cans` — whose size is bounded by `|T|·|M|` but is
//! usually far smaller than `T` — produces the answer set.
//!
//! Pruning (the `OptHyPE` variants) additionally consults a
//! [`ReachabilityIndex`]: a subtree rooted at a child labelled `L` is
//! skipped outright when, given the labels the DTD allows below `L`,
//! (a) no selecting-NFA state pending at that child can reach a final
//! state, and (b) every pending filter state is necessarily false there.
//! Correctness of that rule assumes the document conforms to the DTD used
//! to build the index, which is the same assumption the paper makes.

use std::collections::{BTreeSet, HashMap};

use smoqe_automata::{
    AfaId, AfaState, AfaStateId, FinalPredicate, LabelMap, Mfa, StateId, Transition,
};
use smoqe_xml::{LabelId, NodeId, XmlTree};

use crate::index::ReachabilityIndex;

/// Execution statistics of one HyPE run, used to reproduce the paper's
/// pruning measurements ("HyPE prunes, on average, 78.2% of the element
/// nodes, OptHyPE 88%").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HypeStats {
    /// Number of element nodes in the evaluated subtree.
    pub nodes_total: usize,
    /// Number of element nodes actually visited by the traversal.
    pub nodes_visited: usize,
    /// Number of vertices of the candidate-answer DAG `cans`.
    pub cans_vertices: usize,
    /// Number of edges of `cans`.
    pub cans_edges: usize,
    /// Number of Boolean filter variables (`X(node, state)`) computed.
    pub afa_values_computed: usize,
}

impl HypeStats {
    /// Fraction of element nodes that were *not* visited (pruned), in `[0, 1]`.
    pub fn pruned_fraction(&self) -> f64 {
        if self.nodes_total == 0 {
            0.0
        } else {
            1.0 - self.nodes_visited as f64 / self.nodes_total as f64
        }
    }
}

/// The result of a HyPE run: the answer set and the run's statistics.
#[derive(Debug, Clone)]
pub struct HypeResult {
    /// The answer `n[[M]]`.
    pub answers: BTreeSet<NodeId>,
    /// Traversal statistics.
    pub stats: HypeStats,
}

/// Evaluates `mfa` at the root of `tree` with plain HyPE (no index).
pub fn evaluate(tree: &XmlTree, mfa: &Mfa) -> HypeResult {
    evaluate_at_with(tree, tree.root(), mfa, None)
}

/// Evaluates `mfa` at `context` with plain HyPE (no index).
pub fn evaluate_at(tree: &XmlTree, context: NodeId, mfa: &Mfa) -> HypeResult {
    evaluate_at_with(tree, context, mfa, None)
}

/// Evaluates `mfa` at the root of `tree` with an OptHyPE(-C) index.
pub fn evaluate_with_index(tree: &XmlTree, mfa: &Mfa, index: &ReachabilityIndex) -> HypeResult {
    evaluate_at_with(tree, tree.root(), mfa, Some(index))
}

/// Evaluates `mfa` at `context`, optionally with an OptHyPE(-C) index.
pub fn evaluate_at_with(
    tree: &XmlTree,
    context: NodeId,
    mfa: &Mfa,
    index: Option<&ReachabilityIndex>,
) -> HypeResult {
    let mut engine = Engine::new(tree, mfa, index);
    engine.run(context)
}

// ---------------------------------------------------------------------------
// The candidate-answer DAG.
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct CansVertex {
    node: NodeId,
    is_final: bool,
    /// `false` once the state's AFA evaluated to false at `node`.
    valid: bool,
    edges: Vec<u32>,
}

// ---------------------------------------------------------------------------
// The engine proper.
// ---------------------------------------------------------------------------

struct Engine<'a> {
    tree: &'a XmlTree,
    mfa: &'a Mfa,
    label_map: LabelMap,
    index: Option<&'a ReachabilityIndex>,
    /// Per document label: for every NFA state, whether a final state is
    /// reachable from it using only transitions whose labels may occur
    /// below an element with that label (wildcards always may). Lazily
    /// populated; used by the OptHyPE pruning rule.
    nfa_accept_below: HashMap<LabelId, Vec<bool>>,
    /// Per document label, per AFA, per AFA state: whether the filter value
    /// could possibly be true inside such a subtree (a final or a negation
    /// is reachable through transitions allowed below the label).
    afa_true_below: HashMap<LabelId, Vec<Vec<bool>>>,
    cans: Vec<CansVertex>,
    stats: HypeStats,
}

type AfaValues = HashMap<(AfaId, AfaStateId), bool>;

impl<'a> Engine<'a> {
    fn new(tree: &'a XmlTree, mfa: &'a Mfa, index: Option<&'a ReachabilityIndex>) -> Self {
        Engine {
            tree,
            mfa,
            label_map: LabelMap::new(mfa, tree.labels()),
            index,
            nfa_accept_below: HashMap::new(),
            afa_true_below: HashMap::new(),
            cans: Vec::new(),
            stats: HypeStats::default(),
        }
    }

    fn run(&mut self, context: NodeId) -> HypeResult {
        self.stats.nodes_total = self.tree.subtree_size(context);
        let start = self.mfa.nfa().start();
        let init_vertices = self.visit(context, vec![start], Vec::new(), &[]).1;

        // Phase 2: traverse `cans` from the initial vertices through valid
        // vertices only, collecting the nodes attached to final states.
        let mut answers = BTreeSet::new();
        let mut seen = vec![false; self.cans.len()];
        let mut stack: Vec<u32> = init_vertices
            .iter()
            .filter(|&&v| self.cans[v as usize].valid)
            .copied()
            .collect();
        for &v in &stack {
            seen[v as usize] = true;
        }
        while let Some(v) = stack.pop() {
            let is_final = self.cans[v as usize].is_final;
            if is_final {
                answers.insert(self.cans[v as usize].node);
            }
            let edges = self.cans[v as usize].edges.clone();
            for next in edges {
                if !seen[next as usize] && self.cans[next as usize].valid {
                    seen[next as usize] = true;
                    stack.push(next);
                }
            }
        }

        self.stats.cans_vertices = self.cans.len();
        self.stats.cans_edges = self.cans.iter().map(|v| v.edges.len()).sum();
        HypeResult {
            answers,
            stats: self.stats,
        }
    }

    /// Visits `node`: builds its `cans` vertices, decides which children to
    /// descend into, evaluates the pending filter states bottom-up, and
    /// returns (filter values computed at `node`, vertex ids of the entry
    /// states at `node` — used as the `Init` set for the context node).
    fn visit(
        &mut self,
        node: NodeId,
        entry_states: Vec<StateId>,
        requests: Vec<(AfaId, AfaStateId)>,
        parent_vertices: &[(StateId, u32)],
    ) -> (AfaValues, Vec<u32>) {
        self.stats.nodes_visited += 1;
        let nfa = self.mfa.nfa();
        let mstates = nfa.eps_closure(&entry_states);

        // Vertices for every state assumed at this node.
        let mut vertex_of: HashMap<StateId, u32> = HashMap::with_capacity(mstates.len());
        for &s in &mstates {
            let idx = self.cans.len() as u32;
            self.cans.push(CansVertex {
                node,
                is_final: nfa.state(s).is_final,
                valid: true,
                edges: Vec::new(),
            });
            vertex_of.insert(s, idx);
        }
        // Within-node ε edges.
        for &s in &mstates {
            let from = vertex_of[&s];
            for &t in &nfa.state(s).eps {
                if let Some(&to) = vertex_of.get(&t) {
                    self.cans[from as usize].edges.push(to);
                }
            }
        }
        // Edges from the parent's vertices into this node's entry states.
        let node_label = self.tree.label(node);
        for &(sp, vp) in parent_vertices {
            for &(t, tgt) in &nfa.state(sp).trans {
                if self.label_map.matches(t, node_label) {
                    if let Some(&to) = vertex_of.get(&tgt) {
                        self.cans[vp as usize].edges.push(to);
                    }
                }
            }
        }

        // Filters triggered here (λ annotations) plus those requested by the
        // parent, closed under operator-state successors.
        let mut request_set: BTreeSet<(AfaId, AfaStateId)> = requests.into_iter().collect();
        for &s in &mstates {
            if let Some(afa) = nfa.state(s).afa {
                request_set.insert((afa, self.mfa.afa(afa).start()));
            }
        }
        let closure = self.close_requests(request_set);

        // Descend into the children that can contribute.
        let my_vertices: Vec<(StateId, u32)> =
            mstates.iter().map(|&s| (s, vertex_of[&s])).collect();
        let children: Vec<NodeId> = self.tree.children(node).to_vec();
        let mut child_values: Vec<(NodeId, AfaValues)> = Vec::new();
        for child in children {
            let child_label = self.tree.label(child);
            let mut entry_c: Vec<StateId> = Vec::new();
            for &s in &mstates {
                for &(t, tgt) in &nfa.state(s).trans {
                    if self.label_map.matches(t, child_label) && !entry_c.contains(&tgt) {
                        entry_c.push(tgt);
                    }
                }
            }
            let mut requests_c: Vec<(AfaId, AfaStateId)> = Vec::new();
            for &(afa, q) in &closure {
                if let AfaState::Trans(t, tgt) = self.mfa.afa(afa).state(q) {
                    if self.label_map.matches(*t, child_label)
                        && !requests_c.contains(&(afa, *tgt))
                    {
                        requests_c.push((afa, *tgt));
                    }
                }
            }
            if entry_c.is_empty() && requests_c.is_empty() {
                continue; // basic pruning: nothing can happen below
            }
            if self.can_skip_subtree(child, &entry_c, &requests_c) {
                continue; // index pruning: all pending filter values are false
            }
            let (values, _) = self.visit(child, entry_c, requests_c, &my_vertices);
            child_values.push((child, values));
        }

        // Bottom-up filter evaluation at this node.
        let values = self.compute_values(node, &closure, &child_values);

        // Invalidate vertices whose filter failed.
        for &s in &mstates {
            if let Some(afa) = nfa.state(s).afa {
                let holds = values
                    .get(&(afa, self.mfa.afa(afa).start()))
                    .copied()
                    .unwrap_or(false);
                if !holds {
                    self.cans[vertex_of[&s] as usize].valid = false;
                }
            }
        }

        let init = entry_states
            .iter()
            .filter_map(|s| vertex_of.get(s).copied())
            .collect();
        (values, init)
    }

    /// Closes a set of requested filter states under operator-state
    /// successors (AND/OR/NOT ε-moves stay on the same node).
    fn close_requests(
        &self,
        initial: BTreeSet<(AfaId, AfaStateId)>,
    ) -> BTreeSet<(AfaId, AfaStateId)> {
        let mut closure = initial.clone();
        let mut worklist: Vec<(AfaId, AfaStateId)> = initial.into_iter().collect();
        while let Some((afa, q)) = worklist.pop() {
            let successors: Vec<AfaStateId> = match self.mfa.afa(afa).state(q) {
                AfaState::And(v) | AfaState::Or(v) => v.clone(),
                AfaState::Not(x) => vec![*x],
                AfaState::Trans(..) | AfaState::Final(_) => Vec::new(),
            };
            for s in successors {
                if closure.insert((afa, s)) {
                    worklist.push((afa, s));
                }
            }
        }
        closure
    }

    // -----------------------------------------------------------------------
    // OptHyPE pruning.
    // -----------------------------------------------------------------------

    /// `true` if the subtree rooted at `child` can be skipped: the DTD
    /// guarantees that no selecting-NFA state pending there can reach a
    /// final state, and every pending filter state is necessarily false.
    fn can_skip_subtree(
        &mut self,
        child: NodeId,
        entry_states: &[StateId],
        requests: &[(AfaId, AfaStateId)],
    ) -> bool {
        if self.index.is_none() {
            return false;
        }
        let label = self.tree.label(child);
        let Some(index) = self.index else {
            return false;
        };
        if index.allowed_below(label).is_none() {
            return false; // label unknown to the DTD: no pruning information
        }
        if !self.nfa_accept_below.contains_key(&label) {
            let table = self.compute_nfa_accept_below(label);
            self.nfa_accept_below.insert(label, table);
        }
        let nfa_table = &self.nfa_accept_below[&label];
        let closure = self.mfa.nfa().eps_closure(entry_states);
        if closure.iter().any(|s| nfa_table[s.index()]) {
            return false;
        }
        if requests.is_empty() {
            return true;
        }
        if !self.afa_true_below.contains_key(&label) {
            let table = self.compute_afa_true_below(label);
            self.afa_true_below.insert(label, table);
        }
        let afa_table = &self.afa_true_below[&label];
        requests
            .iter()
            .all(|&(afa, q)| !afa_table[afa.index()][q.index()])
    }

    /// Whether a label transition may fire inside a subtree whose root
    /// carries `below_label`: wildcards always may, named labels only if the
    /// DTD allows them below that element type.
    fn transition_allowed_below(&self, t: Transition, allowed: &[u64]) -> bool {
        match t {
            Transition::Any => true,
            Transition::Label(l) => {
                let bit = l as usize;
                allowed
                    .get(bit / 64)
                    .map(|w| w & (1 << (bit % 64)) != 0)
                    .unwrap_or(false)
            }
        }
    }

    /// Per NFA state: can a final state be reached using only transitions
    /// that may fire inside a subtree labelled `label`?
    fn compute_nfa_accept_below(&self, label: LabelId) -> Vec<bool> {
        let index = self.index.expect("called only with an index");
        let allowed = index
            .allowed_below(label)
            .expect("caller checked the label is known")
            .to_vec();
        let nfa = self.mfa.nfa();
        let mut can = vec![false; nfa.len()];
        for (id, state) in nfa.states() {
            if state.is_final {
                can[id.index()] = true;
            }
        }
        loop {
            let mut changed = false;
            for (id, state) in nfa.states() {
                if can[id.index()] {
                    continue;
                }
                let reach = state.eps.iter().any(|e| can[e.index()])
                    || state.trans.iter().any(|&(t, tgt)| {
                        self.transition_allowed_below(t, &allowed) && can[tgt.index()]
                    });
                if reach {
                    can[id.index()] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        can
    }

    /// Per AFA state: could its value be true at some node inside a subtree
    /// labelled `label`? Over-approximated: a reachable final state or any
    /// reachable negation makes the answer "maybe".
    fn compute_afa_true_below(&self, label: LabelId) -> Vec<Vec<bool>> {
        let index = self.index.expect("called only with an index");
        let allowed = index
            .allowed_below(label)
            .expect("caller checked the label is known")
            .to_vec();
        let mut out = Vec::with_capacity(self.mfa.afas().len());
        for afa in self.mfa.afas() {
            let mut maybe = vec![false; afa.len()];
            for (id, state) in afa.states() {
                if matches!(state, AfaState::Final(_) | AfaState::Not(_)) {
                    maybe[id.index()] = true;
                }
            }
            loop {
                let mut changed = false;
                for (id, state) in afa.states() {
                    if maybe[id.index()] {
                        continue;
                    }
                    let reach = match state {
                        AfaState::And(v) | AfaState::Or(v) => {
                            v.iter().any(|s| maybe[s.index()])
                        }
                        AfaState::Not(_) | AfaState::Final(_) => true,
                        AfaState::Trans(t, tgt) => {
                            self.transition_allowed_below(*t, &allowed) && maybe[tgt.index()]
                        }
                    };
                    if reach {
                        maybe[id.index()] = true;
                        changed = true;
                    }
                }
                if !changed {
                    break;
                }
            }
            out.push(maybe);
        }
        out
    }

    // -----------------------------------------------------------------------
    // Bottom-up filter evaluation.
    // -----------------------------------------------------------------------

    /// Computes the Boolean variables `X(node, state)` for every filter
    /// state in `closure`, using the children's already-computed values.
    fn compute_values(
        &mut self,
        node: NodeId,
        closure: &BTreeSet<(AfaId, AfaStateId)>,
        child_values: &[(NodeId, AfaValues)],
    ) -> AfaValues {
        let mut memo: AfaValues = HashMap::with_capacity(closure.len());
        for &(afa, q) in closure {
            let mut in_progress = BTreeSet::new();
            self.value_of(node, afa, q, child_values, &mut memo, &mut in_progress);
        }
        memo
    }

    fn value_of(
        &mut self,
        node: NodeId,
        afa: AfaId,
        q: AfaStateId,
        child_values: &[(NodeId, AfaValues)],
        memo: &mut AfaValues,
        in_progress: &mut BTreeSet<(AfaId, AfaStateId)>,
    ) -> bool {
        if let Some(&v) = memo.get(&(afa, q)) {
            return v;
        }
        if !in_progress.insert((afa, q)) {
            // ε-cycle among operator states (degenerate `(.)*` filters):
            // the least fix-point is false.
            return false;
        }
        self.stats.afa_values_computed += 1;
        let value = match self.mfa.afa(afa).state(q).clone() {
            AfaState::Final(pred) => match pred {
                FinalPredicate::True => true,
                FinalPredicate::False => false,
                FinalPredicate::TextEq(ref value) => {
                    self.tree.text(node) == Some(value.as_str())
                }
            },
            AfaState::Not(x) => !self.value_of(node, afa, x, child_values, memo, in_progress),
            AfaState::And(children) => children
                .iter()
                .all(|&c| self.value_of(node, afa, c, child_values, memo, in_progress)),
            AfaState::Or(children) => children
                .iter()
                .any(|&c| self.value_of(node, afa, c, child_values, memo, in_progress)),
            AfaState::Trans(t, tgt) => child_values.iter().any(|(child, values)| {
                self.label_map.matches(t, self.tree.label(*child))
                    && values.get(&(afa, tgt)).copied().unwrap_or(false)
            }),
        };
        in_progress.remove(&(afa, q));
        memo.insert((afa, q), value);
        value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smoqe_automata::{compile_query, evaluate_mfa_at};
    use smoqe_xml::hospital::hospital_document_dtd;
    use smoqe_xml::{XmlTree, XmlTreeBuilder};
    use smoqe_xpath::parse_path;

    /// The view-shaped tree of the paper's Fig. 4.
    fn fig4_tree() -> XmlTree {
        let mut b = XmlTreeBuilder::new();
        let n1 = b.root("hospital");
        let n2 = b.child(n1, "patient");
        let n3 = b.child(n2, "parent");
        let n4 = b.child(n3, "patient");
        let n5 = b.child(n4, "parent");
        let n6 = b.child(n5, "patient");
        let rec = b.child(n6, "record");
        b.child_with_text(rec, "diagnosis", "lung disease");
        let n7 = b.child(n2, "record");
        b.child_with_text(n7, "diagnosis", "lung disease");
        let n9 = b.child(n1, "patient");
        let n10 = b.child(n9, "parent");
        let n11 = b.child(n10, "patient");
        let n12 = b.child(n11, "record");
        b.child_with_text(n12, "diagnosis", "heart disease");
        let n14 = b.child(n9, "record");
        b.child_with_text(n14, "diagnosis", "brain disease");
        b.finish()
    }

    /// A small document conforming to the hospital DTD, for index tests.
    fn hospital_doc() -> XmlTree {
        let mut b = XmlTreeBuilder::new();
        let root = b.root("hospital");
        let dept = b.child(root, "department");
        b.child_with_text(dept, "name", "Cardiology");
        for (name, diag) in [("Alice", "heart disease"), ("Bob", "flu"), ("Carol", "heart disease")] {
            let p = b.child(dept, "patient");
            b.child_with_text(p, "pname", name);
            let addr = b.child(p, "address");
            b.child_with_text(addr, "street", "s");
            b.child_with_text(addr, "city", "c");
            b.child_with_text(addr, "zip", "z");
            let v = b.child(p, "visit");
            b.child_with_text(v, "date", "2006-01-01");
            let t = b.child(v, "treatment");
            let m = b.child(t, "medication");
            b.child_with_text(m, "type", "tablet");
            b.child_with_text(m, "diagnosis", diag);
            let d = b.child(dept, "doctor");
            b.child_with_text(d, "dname", "Dr X");
            b.child_with_text(d, "specialty", "cardiology");
        }
        b.finish()
    }

    /// HyPE must agree with the naive MFA evaluator.
    fn assert_hype_matches_naive(tree: &XmlTree, query: &str) {
        let q = parse_path(query).unwrap();
        let mfa = compile_query(&q);
        let expected = evaluate_mfa_at(tree, tree.root(), &mfa);
        let basic = evaluate(tree, &mfa);
        assert_eq!(basic.answers, expected, "HyPE differs on `{query}`");
        assert!(basic.stats.nodes_visited <= basic.stats.nodes_total);
    }

    #[test]
    fn matches_naive_on_plain_paths() {
        let t = fig4_tree();
        assert_hype_matches_naive(&t, "patient");
        assert_hype_matches_naive(&t, "patient/parent/patient");
        assert_hype_matches_naive(&t, "patient/record/diagnosis");
    }

    #[test]
    fn matches_naive_on_stars_and_descendants() {
        let t = fig4_tree();
        assert_hype_matches_naive(&t, "(patient/parent)*/patient");
        assert_hype_matches_naive(&t, "//diagnosis");
        assert_hype_matches_naive(&t, "patient//record");
    }

    #[test]
    fn matches_naive_on_filters() {
        let t = fig4_tree();
        assert_hype_matches_naive(&t, "patient[record]");
        assert_hype_matches_naive(&t, "patient[not(record)]");
        assert_hype_matches_naive(&t, "patient[record/diagnosis/text()='brain disease']");
        assert_hype_matches_naive(
            &t,
            "(patient/parent)*/patient[(parent/patient)*/record/diagnosis[text()='heart disease']]",
        );
        assert_hype_matches_naive(
            &t,
            "patient[*//record/diagnosis/text()='heart disease']",
        );
        assert_hype_matches_naive(&t, "patient[record and not(parent)]");
        assert_hype_matches_naive(&t, "patient[record or parent]");
    }

    #[test]
    fn fig4_answer_is_nodes_9_and_11() {
        // The paper's running evaluation example: Q0 selects the two
        // patients on the heart-disease branch.
        let t = fig4_tree();
        let q = parse_path(
            "(patient/parent)*/patient[(parent/patient)*/record/diagnosis[text()='heart disease']]",
        )
        .unwrap();
        let mfa = compile_query(&q);
        let result = evaluate(&t, &mfa);
        let labels: Vec<&str> = result
            .answers
            .iter()
            .map(|&n| t.label_name(n))
            .collect();
        assert_eq!(result.answers.len(), 2);
        assert!(labels.iter().all(|&l| l == "patient"));
    }

    #[test]
    fn index_variants_agree_with_basic_hype() {
        let doc = hospital_doc();
        let dtd = hospital_document_dtd();
        for query in [
            "department/patient[visit/treatment/medication/diagnosis/text()='heart disease']",
            "department/patient/pname",
            "//diagnosis",
            "//zip",
            "department/patient[visit/treatment/test]",
            "department/doctor[specialty/text()='cardiology']/dname",
            "department/doctor[diagnosis]",
            "department/patient[not(visit)]",
        ] {
            let q = parse_path(query).unwrap();
            let mfa = compile_query(&q);
            let plain = evaluate(&doc, &mfa);
            let naive = evaluate_mfa_at(&doc, doc.root(), &mfa);
            assert_eq!(plain.answers, naive, "HyPE differs on `{query}`");
            let opt_index = ReachabilityIndex::new(&mfa, &dtd, doc.labels());
            let opt = evaluate_with_index(&doc, &mfa, &opt_index);
            let optc_index = ReachabilityIndex::new_compressed(&mfa, &dtd, doc.labels());
            let optc = evaluate_with_index(&doc, &mfa, &optc_index);
            assert_eq!(plain.answers, opt.answers, "OptHyPE differs on `{query}`");
            assert_eq!(plain.answers, optc.answers, "OptHyPE-C differs on `{query}`");
            assert!(
                opt.stats.nodes_visited <= plain.stats.nodes_visited,
                "index must not visit more nodes (`{query}`)"
            );
        }
    }

    #[test]
    fn pruning_skips_irrelevant_subtrees() {
        let doc = hospital_doc();
        let dtd = hospital_document_dtd();
        // The query only cares about pname; address/visit/doctor subtrees
        // are irrelevant and must be skipped even by basic HyPE.
        let q = parse_path("department/patient/pname").unwrap();
        let mfa = compile_query(&q);
        let basic = evaluate(&doc, &mfa);
        assert!(basic.stats.pruned_fraction() > 0.3, "basic pruning too weak");
        let index = ReachabilityIndex::new(&mfa, &dtd, doc.labels());
        let opt = evaluate_with_index(&doc, &mfa, &index);
        assert!(opt.stats.nodes_visited <= basic.stats.nodes_visited);
    }

    #[test]
    fn index_prunes_descendant_queries_that_basic_hype_cannot() {
        let doc = hospital_doc();
        let dtd = hospital_document_dtd();
        // `//zip`: plain HyPE must visit essentially the whole document (the
        // wildcard loop matches everything); OptHyPE knows from the DTD that
        // zip can only occur below address and skips everything else.
        let q = parse_path("//zip").unwrap();
        let mfa = compile_query(&q);
        let basic = evaluate(&doc, &mfa);
        let index = ReachabilityIndex::new(&mfa, &dtd, doc.labels());
        let opt = evaluate_with_index(&doc, &mfa, &index);
        assert_eq!(basic.answers, opt.answers);
        assert_eq!(basic.answers.len(), 3);
        assert!(
            opt.stats.nodes_visited * 2 < basic.stats.nodes_visited,
            "expected OptHyPE ({}) to visit far fewer nodes than HyPE ({})",
            opt.stats.nodes_visited,
            basic.stats.nodes_visited
        );
    }

    #[test]
    fn negated_filters_disable_unsafe_pruning() {
        let doc = hospital_doc();
        let dtd = hospital_document_dtd();
        // not(//diagnosis) is true at doctors even though no diagnosis can
        // occur below them; the index must not assume the filter is false.
        let q = parse_path("department/doctor[not(.//diagnosis)]").unwrap();
        let mfa = compile_query(&q);
        let basic = evaluate(&doc, &mfa);
        let index = ReachabilityIndex::new(&mfa, &dtd, doc.labels());
        let opt = evaluate_with_index(&doc, &mfa, &index);
        assert_eq!(basic.answers, opt.answers);
        assert_eq!(basic.answers.len(), 3, "all three doctors qualify");
    }

    #[test]
    fn evaluation_from_inner_context() {
        let t = fig4_tree();
        let q = parse_path("parent/patient[record/diagnosis/text()='heart disease']").unwrap();
        let mfa = compile_query(&q);
        for ctx in t.node_ids() {
            let expected = evaluate_mfa_at(&t, ctx, &mfa);
            let got = evaluate_at(&t, ctx, &mfa);
            assert_eq!(got.answers, expected, "context {ctx:?}");
        }
    }

    #[test]
    fn stats_are_populated() {
        let t = fig4_tree();
        let q = parse_path("(patient/parent)*/patient[record]").unwrap();
        let mfa = compile_query(&q);
        let r = evaluate(&t, &mfa);
        assert_eq!(r.stats.nodes_total, t.len());
        assert!(r.stats.nodes_visited > 0);
        assert!(r.stats.cans_vertices > 0);
        assert!(r.stats.afa_values_computed > 0);
        assert!(r.stats.pruned_fraction() >= 0.0 && r.stats.pruned_fraction() <= 1.0);
    }

    #[test]
    fn empty_answer_queries() {
        let t = fig4_tree();
        assert_hype_matches_naive(&t, "doctor");
        assert_hype_matches_naive(&t, "patient[visit]");
        let q = parse_path("doctor").unwrap();
        let mfa = compile_query(&q);
        let r = evaluate(&t, &mfa);
        assert!(r.answers.is_empty());
        // Nothing matches at the root's children, so only the root is visited.
        assert_eq!(r.stats.nodes_visited, 1);
    }
}
