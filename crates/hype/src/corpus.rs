//! The **across-documents** parallel axis: a batch of (document, query)
//! pairs routed over the same scoped-thread worker pool as [`crate::parallel`].
//!
//! PR 5's within-document sharding splits one traversal across workers,
//! which is the right tool when a single large document must answer fast —
//! but its speedup is capped by the skew of the top-level subtrees. A
//! *corpus* workload (the paper's Section 7 setting: many security-view
//! documents queried repeatedly) has a better axis available: the pairs are
//! completely independent, so each one can run the **unchanged sequential
//! engine** on its own worker. No shard split, no merge, no skew cap —
//! and bit-identical results are free, because every pair executes exactly
//! the code path it would have executed in a sequential loop.
//!
//! * [`CorpusTask`] — one work item: a document, a compiled query, and an
//!   optional OptHyPE(-C) reachability index.
//! * [`evaluate_corpus`] — the sequential reference loop.
//! * [`evaluate_corpus_parallel`] — the same items claimed off a shared
//!   atomic counter by `min(threads, items)` scoped workers; results are
//!   reordered back to input order, so answers *and* per-pair
//!   [`HypeStats`](crate::HypeStats) are **bit-identical** to
//!   [`evaluate_corpus`] at every thread budget (asserted by the
//!   `corpus_differential` integration suite and the `corpus_throughput`
//!   bench).
//!
//! The service layer (`smoqe::QueryService::evaluate_corpus_parallel`)
//! builds the task list from its `DocumentStore` and caches, then dispatches
//! here.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use smoqe_automata::CompiledMfa;
use smoqe_xml::XmlTree;

use crate::engine::{evaluate_compiled_at_with, HypeResult};
use crate::index::ReachabilityIndex;
use crate::parallel::{claim_parallel, resolve_threads};

/// One (document, query) work item of a corpus evaluation.
///
/// Borrows the document and index (the caller's store keeps them alive) and
/// shares the compiled IR by `Arc`, so building a task list is cheap — no
/// per-item clones of anything larger than a pointer.
#[derive(Debug, Clone)]
pub struct CorpusTask<'a> {
    /// The document to evaluate over (context = its root).
    pub tree: &'a XmlTree,
    /// The compiled execution IR of the query.
    pub compiled: Arc<CompiledMfa>,
    /// Optional OptHyPE(-C) reachability index; must have been built against
    /// `tree`'s label interner.
    pub index: Option<&'a ReachabilityIndex>,
}

impl<'a> CorpusTask<'a> {
    /// Creates a plain-HyPE task (no pruning index).
    pub fn new(tree: &'a XmlTree, compiled: Arc<CompiledMfa>) -> Self {
        CorpusTask {
            tree,
            compiled,
            index: None,
        }
    }

    /// Creates a task pruned by `index` (OptHyPE / OptHyPE-C).
    pub fn with_index(
        tree: &'a XmlTree,
        compiled: Arc<CompiledMfa>,
        index: &'a ReachabilityIndex,
    ) -> Self {
        CorpusTask {
            tree,
            compiled,
            index: Some(index),
        }
    }

    /// Runs this task on the sequential engine.
    fn run(&self) -> HypeResult {
        evaluate_compiled_at_with(self.tree, self.tree.root(), &self.compiled, self.index)
    }
}

/// Evaluates every task sequentially, in order — the reference loop the
/// parallel path is differentially tested against.
pub fn evaluate_corpus(tasks: &[CorpusTask]) -> Vec<HypeResult> {
    tasks.iter().map(CorpusTask::run).collect()
}

/// Evaluates every task across up to `threads` scoped workers (0 = all
/// cores), one document per work item, returning results in input order.
///
/// Workers claim task indices off a shared atomic counter (natural load
/// balancing when document sizes are skewed) and run the unchanged
/// sequential engine per item, so answers and per-item
/// [`HypeStats`](crate::HypeStats) are bit-identical to
/// [`evaluate_corpus`] at every thread budget:
///
/// ```
/// use std::sync::Arc;
/// use smoqe_automata::{compile_query, CompiledMfa};
/// use smoqe_hype::corpus::{evaluate_corpus, evaluate_corpus_parallel, CorpusTask};
/// use smoqe_xml::parse_document;
/// use smoqe_xpath::parse_path;
///
/// let docs: Vec<_> = ["<r><a/></r>", "<r><a/><a/></r>", "<r/>"]
///     .iter()
///     .map(|s| parse_document(s).unwrap())
///     .collect();
/// let ir = Arc::new(CompiledMfa::new(&compile_query(&parse_path("a").unwrap())));
/// let tasks: Vec<_> = docs
///     .iter()
///     .map(|d| CorpusTask::new(d, Arc::clone(&ir)))
///     .collect();
/// assert_eq!(evaluate_corpus_parallel(&tasks, 4), evaluate_corpus(&tasks));
/// ```
pub fn evaluate_corpus_parallel(tasks: &[CorpusTask], threads: usize) -> Vec<HypeResult> {
    if tasks.is_empty() {
        return Vec::new();
    }
    let workers = resolve_threads(threads).min(tasks.len());
    let mut collected: Vec<(usize, HypeResult)> = claim_parallel(workers, |next| {
        let mut mine = Vec::new();
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            let Some(task) = tasks.get(i) else {
                break;
            };
            mine.push((i, task.run()));
        }
        mine
    })
    .into_iter()
    .flatten()
    .collect();
    collected.sort_by_key(|&(i, _)| i);
    collected.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use smoqe_automata::compile_query;
    use smoqe_xml::hospital::hospital_document_dtd;
    use smoqe_xml::{parse_document, XmlTreeBuilder};
    use smoqe_xpath::parse_path;

    fn ir(query: &str) -> Arc<CompiledMfa> {
        Arc::new(CompiledMfa::new(&compile_query(&parse_path(query).unwrap())))
    }

    fn corpus() -> Vec<XmlTree> {
        let mut docs = vec![
            parse_document("<hospital><department><patient><pname>Ann</pname></patient></department></hospital>").unwrap(),
            parse_document("<hospital/>").unwrap(),
        ];
        let mut b = XmlTreeBuilder::new();
        let root = b.root("hospital");
        for i in 0..5 {
            let dept = b.child(root, "department");
            let p = b.child(dept, "patient");
            b.child_with_text(p, "pname", if i % 2 == 0 { "Alice" } else { "Bob" });
            let v = b.child(p, "visit");
            let t = b.child(v, "treatment");
            let m = b.child(t, "medication");
            b.child_with_text(m, "diagnosis", "heart disease");
        }
        docs.push(b.finish());
        docs
    }

    #[test]
    fn parallel_matches_sequential_at_every_budget() {
        let docs = corpus();
        let queries = ["//pname", "department/patient", "//diagnosis", "doctor"];
        let tasks: Vec<CorpusTask> = docs
            .iter()
            .flat_map(|d| queries.iter().map(|q| CorpusTask::new(d, ir(q))))
            .collect();
        let sequential = evaluate_corpus(&tasks);
        for threads in [0, 1, 2, 8, 64] {
            let parallel = evaluate_corpus_parallel(&tasks, threads);
            assert_eq!(parallel.len(), sequential.len());
            for (i, (p, s)) in parallel.iter().zip(&sequential).enumerate() {
                assert_eq!(p.answers, s.answers, "task {i} @{threads}");
                assert_eq!(p.stats, s.stats, "task {i} @{threads}");
            }
        }
    }

    #[test]
    fn indexed_tasks_match_sequential() {
        let docs = corpus();
        let dtd = hospital_document_dtd();
        let mfa = compile_query(&parse_path("//diagnosis").unwrap());
        let compiled = Arc::new(CompiledMfa::new(&mfa));
        let indexes: Vec<ReachabilityIndex> = docs
            .iter()
            .map(|d| ReachabilityIndex::new(&mfa, &dtd, d.labels()))
            .collect();
        let tasks: Vec<CorpusTask> = docs
            .iter()
            .zip(&indexes)
            .map(|(d, ix)| CorpusTask::with_index(d, Arc::clone(&compiled), ix))
            .collect();
        let sequential = evaluate_corpus(&tasks);
        for threads in [1, 3] {
            assert_eq!(evaluate_corpus_parallel(&tasks, threads), sequential, "@{threads}");
        }
    }

    #[test]
    fn empty_corpus_is_a_no_op() {
        assert!(evaluate_corpus_parallel(&[], 8).is_empty());
        assert!(evaluate_corpus(&[]).is_empty());
    }

    #[test]
    fn more_workers_than_tasks_is_fine() {
        let doc = parse_document("<r><a/></r>").unwrap();
        let tasks = vec![CorpusTask::new(&doc, ir("a"))];
        let results = evaluate_corpus_parallel(&tasks, 16);
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].answers.len(), 1);
    }
}
