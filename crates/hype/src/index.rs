//! The OptHyPE / OptHyPE-C reachability index.
//!
//! For every document element type `A`, the document DTD determines the set
//! of element types that can occur strictly below an `A` element. Projected
//! onto the labels an MFA actually mentions, this yields — per document
//! label — a bitset of MFA labels that may still be matched inside that
//! subtree. During evaluation, HyPE consults the index to skip a subtree as
//! soon as no remaining NFA transition and no pending filter transition can
//! possibly fire inside it.
//!
//! `OptHyPE-C` uses the same information stored *compressed*: identical
//! rows (many leaf-like element types have the same — often empty — set)
//! are deduplicated and shared, which shrinks the index roughly by the
//! number of distinct content models while leaving lookups O(1).

use smoqe_xml::{Dtd, LabelId, LabelInterner};
use smoqe_automata::{CompiledMfa, Mfa};

/// A per-document-label index of the MFA labels reachable strictly below an
/// element carrying that label.
#[derive(Debug, Clone)]
pub struct ReachabilityIndex {
    /// Number of 64-bit words per row (⌈ mfa label count / 64 ⌉).
    words_per_row: usize,
    /// For each document label id, the index of its row in `rows`.
    /// Labels unknown to the DTD map to `None` (no pruning possible).
    row_of_label: Vec<Option<u32>>,
    /// Row storage. Uncompressed: one row per document label. Compressed:
    /// one row per *distinct* bitset.
    rows: Vec<u64>,
    /// Whether rows were deduplicated (the OptHyPE-C flavour).
    compressed: bool,
}

impl ReachabilityIndex {
    /// Builds the plain (OptHyPE) index.
    pub fn new(mfa: &Mfa, dtd: &Dtd, doc_labels: &LabelInterner) -> Self {
        Self::from_labels(mfa.labels(), dtd, doc_labels, false)
    }

    /// Builds the compressed (OptHyPE-C) index.
    pub fn new_compressed(mfa: &Mfa, dtd: &Dtd, doc_labels: &LabelInterner) -> Self {
        Self::from_labels(mfa.labels(), dtd, doc_labels, true)
    }

    /// Builds the index from a compiled execution IR (which carries the
    /// automaton's label interner), without the builder [`Mfa`].
    pub fn for_compiled(
        compiled: &CompiledMfa,
        dtd: &Dtd,
        doc_labels: &LabelInterner,
        compressed: bool,
    ) -> Self {
        Self::from_labels(compiled.labels(), dtd, doc_labels, compressed)
    }

    /// Builds the index over an automaton's label interner directly: rows
    /// are bitsets over that interner's ids, so any automaton sharing the
    /// interner (a builder [`Mfa`] and its [`CompiledMfa`]) can consult it.
    pub fn from_labels(
        mfa_labels: &LabelInterner,
        dtd: &Dtd,
        doc_labels: &LabelInterner,
        compressed: bool,
    ) -> Self {
        let mfa_label_count = mfa_labels.len();
        let words_per_row = mfa_label_count.div_ceil(64).max(1);
        let descendants = dtd.graph().descendant_types();

        // Soundness guard: if the document uses a label the DTD does not
        // define (an edit script can splice in arbitrary subtrees), the
        // document provably does not conform to the DTD, so *every*
        // DTD-derived reachability claim is suspect — an `annex` element
        // can sit below `hospital` even though no production puts it there,
        // and pruning at the root on the DTD's say-so would wrongly answer
        // `//annex` with ∅. Disable pruning wholesale.
        if doc_labels.iter().any(|(_, name)| !descendants.contains_key(name)) {
            return Self::no_prune(mfa_labels, doc_labels, compressed);
        }

        let mut row_of_label: Vec<Option<u32>> = vec![None; doc_labels.len()];
        let mut rows: Vec<u64> = Vec::new();
        // For compression: map from row content to its index.
        let mut seen: std::collections::HashMap<Vec<u64>, u32> = std::collections::HashMap::new();

        for (doc_id, name) in doc_labels.iter() {
            let Some(below) = descendants.get(name) else {
                continue; // label unknown to the DTD: no pruning information
            };
            let mut row = vec![0u64; words_per_row];
            for ty in below {
                if let Some(mfa_id) = mfa_labels.get(ty) {
                    let bit = mfa_id.0 as usize;
                    row[bit / 64] |= 1u64 << (bit % 64);
                }
            }
            let row_idx = if compressed {
                match seen.get(&row) {
                    Some(&idx) => idx,
                    None => {
                        let idx = (rows.len() / words_per_row) as u32;
                        rows.extend_from_slice(&row);
                        seen.insert(row, idx);
                        idx
                    }
                }
            } else {
                let idx = (rows.len() / words_per_row) as u32;
                rows.extend_from_slice(&row);
                idx
            };
            row_of_label[doc_id.index()] = Some(row_idx);
        }

        ReachabilityIndex {
            words_per_row,
            row_of_label,
            rows,
            compressed,
        }
    }

    /// An index that never prunes: every label maps to "no information".
    ///
    /// This is the sound fallback for documents that may not conform to the
    /// DTD the index would be derived from — either because they use labels
    /// the DTD does not define (detected by [`Self::from_labels`] itself),
    /// or because an edit spliced a *known* label somewhere the DTD does not
    /// produce it (detected by the service layer via
    /// [`Dtd::edge_conformant`]). Evaluation through such an index is
    /// bit-identical to plain HyPE.
    pub fn no_prune(
        mfa_labels: &LabelInterner,
        doc_labels: &LabelInterner,
        compressed: bool,
    ) -> Self {
        ReachabilityIndex {
            words_per_row: mfa_labels.len().div_ceil(64).max(1),
            row_of_label: vec![None; doc_labels.len()],
            rows: Vec::new(),
            compressed,
        }
    }

    /// `true` if the index carries no pruning information for any label
    /// (the [`Self::no_prune`] fallback, or an empty document).
    pub fn prunes_nothing(&self) -> bool {
        self.row_of_label.iter().all(Option::is_none)
    }

    /// The bitset (over MFA label ids) of labels that may occur strictly
    /// below a document element labelled `doc_label`, or `None` when the
    /// label is unknown to the DTD (in which case no pruning is allowed).
    pub fn allowed_below(&self, doc_label: LabelId) -> Option<&[u64]> {
        let row = (*self.row_of_label.get(doc_label.index())?)?;
        let start = row as usize * self.words_per_row;
        Some(&self.rows[start..start + self.words_per_row])
    }

    /// `true` if this is the compressed (OptHyPE-C) flavour.
    pub fn is_compressed(&self) -> bool {
        self.compressed
    }

    /// Number of 64-bit words per row.
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// Approximate memory footprint of the index in bytes, reported by the
    /// benchmark harness to contrast OptHyPE and OptHyPE-C.
    pub fn memory_bytes(&self) -> usize {
        self.rows.len() * 8 + self.row_of_label.len() * std::mem::size_of::<Option<u32>>()
    }

    /// Number of stored rows (after deduplication, if compressed).
    pub fn stored_rows(&self) -> usize {
        self.rows.len().checked_div(self.words_per_row).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smoqe_automata::compile_query;
    use smoqe_xml::hospital::hospital_document_dtd;
    use smoqe_xpath::parse_path;

    fn doc_interner() -> LabelInterner {
        let mut li = LabelInterner::new();
        for ty in hospital_document_dtd().element_types() {
            li.intern(ty);
        }
        li
    }

    #[test]
    fn diagnosis_is_reachable_below_patient_but_not_below_address() {
        let dtd = hospital_document_dtd();
        let labels = doc_interner();
        let q = parse_path("department/patient//diagnosis").unwrap();
        let mfa = compile_query(&q);
        let index = ReachabilityIndex::new(&mfa, &dtd, &labels);

        let diagnosis_bit = mfa.labels().get("diagnosis").unwrap().0 as usize;
        let below_patient = index.allowed_below(labels.get("patient").unwrap()).unwrap();
        assert!(below_patient[diagnosis_bit / 64] & (1 << (diagnosis_bit % 64)) != 0);

        let below_address = index.allowed_below(labels.get("address").unwrap()).unwrap();
        assert!(below_address[diagnosis_bit / 64] & (1 << (diagnosis_bit % 64)) == 0);
    }

    #[test]
    fn any_unknown_label_disables_pruning_wholesale() {
        // Regression (ROADMAP item 2): a document carrying a label the DTD
        // does not define provably does not conform, so *no* DTD-derived
        // row may be trusted — the alien element can sit below any node
        // even though no production reaches it, and pruning at `hospital`
        // would wrongly answer `//alien-element` with ∅.
        let dtd = hospital_document_dtd();
        let mut labels = doc_interner();
        let alien = labels.intern("alien-element");
        let q = parse_path("patient").unwrap();
        let mfa = compile_query(&q);
        for compressed in [false, true] {
            let index =
                ReachabilityIndex::from_labels(mfa.labels(), &dtd, &labels, compressed);
            assert!(index.allowed_below(alien).is_none());
            assert!(
                index.prunes_nothing(),
                "known labels must also lose their rows (compressed={compressed})"
            );
            assert!(index.allowed_below(labels.get("hospital").unwrap()).is_none());
            assert_eq!(index.stored_rows(), 0);
        }
        // A clean interner keeps full pruning.
        let clean = ReachabilityIndex::new(&mfa, &dtd, &doc_interner());
        assert!(!clean.prunes_nothing());
    }

    #[test]
    fn compressed_index_is_smaller_but_answers_identically() {
        let dtd = hospital_document_dtd();
        let labels = doc_interner();
        let q = parse_path("department/patient[visit/treatment/medication/diagnosis]").unwrap();
        let mfa = compile_query(&q);
        let plain = ReachabilityIndex::new(&mfa, &dtd, &labels);
        let compressed = ReachabilityIndex::new_compressed(&mfa, &dtd, &labels);
        assert!(compressed.is_compressed());
        assert!(compressed.stored_rows() <= plain.stored_rows());
        assert!(compressed.memory_bytes() <= plain.memory_bytes());
        for (id, _) in labels.iter() {
            assert_eq!(plain.allowed_below(id), compressed.allowed_below(id));
        }
    }

    #[test]
    fn leaf_types_have_empty_rows() {
        let dtd = hospital_document_dtd();
        let labels = doc_interner();
        let q = parse_path("department/patient//diagnosis").unwrap();
        let mfa = compile_query(&q);
        let index = ReachabilityIndex::new(&mfa, &dtd, &labels);
        let row = index.allowed_below(labels.get("zip").unwrap()).unwrap();
        assert!(row.iter().all(|&w| w == 0));
    }
}
