//! The compiled per-node evaluation core shared by the tree-walking batch
//! engine ([`crate::batch`]) and the event-driven streaming engine
//! ([`crate::stream`]).
//!
//! Everything HyPE computes *at one node* — the `cans` vertices, the
//! request closure, the OptHyPE pruning decision, the bottom-up Boolean
//! values `X(node, state)` — runs here on the
//! [`CompiledMfa`](smoqe_automata::CompiledMfa) execution IR:
//!
//! * pending NFA states and filter-state closures are `u64`-word bitsets
//!   ([`smoqe_automata::compiled::bits`]), advanced with precompiled
//!   `step-then-ε-close` and operator-closure rows instead of worklists;
//! * filter values are bitset rows too — the per-node
//!   `HashMap<(AfaId, AfaStateId), bool>` of the interpreted engine
//!   ([`crate::interpreted`]) becomes three word rows (`computed`,
//!   `in-progress`, `value`) cleared in O(words);
//! * children hand their value rows up by OR-ing them into per-label
//!   *accumulators*, so a `Trans` state evaluates with one bit test instead
//!   of scanning every child;
//! * all per-node state lives in pooled [`LocalScratch`] buffers — after
//!   the pool warms up to the document depth, the steady-state per-node
//!   path performs **no heap allocation** beyond the amortised growth of
//!   the `cans` output arena (asserted by the `compiled_throughput` bench).
//!
//! The two traversal drivers are thin: [`HypeCore::open`] decides, per
//! query, whether a node has work (building vertices, edges and closures
//! when it does, reporting "skip this subtree" when no query has), and
//! [`HypeCore::close`] resolves the node bottom-up. Because a recursive
//! DFS over an arena and a stack machine over `Open`/`Text`/`Close` events
//! call the exact same code, they produce identical answers *and*
//! identical [`HypeStats`] — and the differential suites additionally pin
//! both to the interpreted reference engines.

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use smoqe_automata::compiled::{bits, ColumnMap, CompiledMfa};
use smoqe_automata::{CompiledAfaState, FinalPredicate, ANY_LABEL};
use smoqe_xml::{LabelId, LabelInterner, NodeId};

use crate::engine::HypeStats;
use crate::index::ReachabilityIndex;

/// Sentinel terminating a vertex's edge list in the shared edge pool.
const NO_EDGE: u32 = u32::MAX;

/// One vertex of a query's candidate-answer DAG `cans`. Edges live in the
/// owning runtime's edge pool as a `(target, next)` linked list, so pushing
/// an edge never allocates a per-vertex `Vec`.
#[derive(Debug)]
pub(crate) struct CansVertex {
    /// The document node the vertex stands for (pre-order index in the
    /// streaming engine).
    node: NodeId,
    is_final: bool,
    /// `false` once the state's AFA evaluated to false at `node`.
    valid: bool,
    /// Head of the vertex's edge list in the pool, or [`NO_EDGE`].
    edge_head: u32,
}

/// Reusable scratch of [`collect_answers`]: the visited stamps and the DFS
/// stack survive across queries and across evaluations instead of being
/// reallocated per call. Staleness is handled by epoch stamping — marking
/// is a store, clearing is free.
#[derive(Debug, Default)]
pub(crate) struct CollectScratch {
    stamp: Vec<u32>,
    epoch: u32,
    stack: Vec<u32>,
}

impl CollectScratch {
    pub fn new() -> Self {
        Self::default()
    }

    fn begin(&mut self, vertices: usize) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // One fill every 2³² evaluations keeps stale stamps impossible.
            self.stamp.fill(0);
            self.epoch = 1;
        }
        if self.stamp.len() < vertices {
            self.stamp.resize(vertices, 0);
        }
        self.stack.clear();
    }

    #[inline]
    fn seen(&self, v: u32) -> bool {
        self.stamp[v as usize] == self.epoch
    }

    #[inline]
    fn mark(&mut self, v: u32) {
        self.stamp[v as usize] = self.epoch;
    }
}

/// Phase 2 of HyPE: traverse `cans` from the initial vertices through valid
/// vertices only, collecting the nodes attached to final states.
pub(crate) fn collect_answers(
    cans: &[CansVertex],
    edges: &[(u32, u32)],
    init_vertices: &[u32],
    scratch: &mut CollectScratch,
) -> BTreeSet<NodeId> {
    collect_answers_impl(cans, edges, init_vertices, scratch, None)
}

/// [`collect_answers`] that also reports *which* vertices were reached.
///
/// The parallel evaluator runs this over the context block (whose vertices
/// are the first `k` ids of every shard arena as well): the reached set
/// seeds the per-shard collection, because every edge of the candidate DAG
/// points strictly downwards — from a node's vertices to a child's — so a
/// shard vertex is reachable from `Init` exactly when some reached context
/// vertex has an edge into the shard.
pub(crate) fn collect_answers_and_reached(
    cans: &[CansVertex],
    edges: &[(u32, u32)],
    init_vertices: &[u32],
    scratch: &mut CollectScratch,
) -> (BTreeSet<NodeId>, Vec<u32>) {
    let mut reached = Vec::new();
    let answers = collect_answers_impl(cans, edges, init_vertices, scratch, Some(&mut reached));
    (answers, reached)
}

/// The one traversal behind both collectors. `reached`, when supplied,
/// records every visited vertex; passing `None` keeps the sequential hot
/// path free of the extra vector.
fn collect_answers_impl(
    cans: &[CansVertex],
    edges: &[(u32, u32)],
    init_vertices: &[u32],
    scratch: &mut CollectScratch,
    mut reached: Option<&mut Vec<u32>>,
) -> BTreeSet<NodeId> {
    let mut answers = BTreeSet::new();
    scratch.begin(cans.len());
    for &v in init_vertices {
        if cans[v as usize].valid && !scratch.seen(v) {
            scratch.mark(v);
            scratch.stack.push(v);
        }
    }
    while let Some(v) = scratch.stack.pop() {
        if let Some(reached) = reached.as_deref_mut() {
            reached.push(v);
        }
        let vertex = &cans[v as usize];
        if vertex.is_final {
            answers.insert(vertex.node);
        }
        let mut e = vertex.edge_head;
        while e != NO_EDGE {
            let (target, next) = edges[e as usize];
            if !scratch.seen(target) && cans[target as usize].valid {
                scratch.mark(target);
                scratch.stack.push(target);
            }
            e = next;
        }
    }
    answers
}

/// Pooled per-node, per-query working state: every bitset row one node
/// visit needs, laid out structure-of-arrays in **one flat allocation**:
///
/// ```text
/// buf: [ mstates (nw) | closure (aw) | values (aw) | acc_any (aw) | acc (slots × aw) ]
/// ```
///
/// A visit touches the regions in exactly this order — NFA step rows, then
/// the filter closure, then (at close) the value row and the parent's
/// accumulators — so the whole per-node working set is one contiguous cache
/// run, and [`LocalScratch::reset`] is a single `fill(0)` instead of five
/// separate clears. A visit takes one from the owning runtime's pool and
/// returns it at close, so steady-state traversal allocates nothing.
#[derive(Debug)]
pub(crate) struct LocalScratch {
    /// The flat SoA row (layout above).
    buf: Vec<u64>,
    /// Words per NFA bitset row (width of the `mstates` region).
    nw: usize,
    /// Words per AFA bitset row (width of every other region).
    aw: usize,
    /// First `cans` vertex id of this node (states ascending).
    vertex_base: u32,
}

impl LocalScratch {
    fn sized(cm: &CompiledMfa) -> Self {
        let nw = cm.nfa_words();
        let aw = cm.afa_words();
        LocalScratch {
            buf: vec![0; nw + aw * (3 + cm.slot_count() as usize)],
            nw,
            aw,
            vertex_base: 0,
        }
    }

    fn reset(&mut self) {
        self.buf.fill(0);
        self.vertex_base = 0;
    }

    /// NFA states assumed at this node (ε-closed).
    #[inline]
    fn mstates(&self) -> &[u64] {
        &self.buf[..self.nw]
    }

    #[inline]
    fn mstates_mut(&mut self) -> &mut [u64] {
        &mut self.buf[..self.nw]
    }

    /// Closed pending filter states.
    #[inline]
    fn closure(&self) -> &[u64] {
        &self.buf[self.nw..self.nw + self.aw]
    }

    #[inline]
    fn closure_mut(&mut self) -> &mut [u64] {
        &mut self.buf[self.nw..self.nw + self.aw]
    }

    /// `mstates` and `closure` borrowed mutably at once (for the λ-trigger
    /// pass, which reads one while OR-ing into the other).
    #[inline]
    fn mstates_closure_mut(&mut self) -> (&mut [u64], &mut [u64]) {
        let (mstates, rest) = self.buf.split_at_mut(self.nw);
        (mstates, &mut rest[..self.aw])
    }

    /// Filter states that evaluated to *true* here (filled at close).
    #[inline]
    fn values(&self) -> &[u64] {
        &self.buf[self.nw + self.aw..self.nw + 2 * self.aw]
    }

    #[inline]
    fn values_mut(&mut self) -> &mut [u64] {
        &mut self.buf[self.nw + self.aw..self.nw + 2 * self.aw]
    }

    /// OR of all closed children's `values` (wildcard transitions).
    #[inline]
    fn acc_any(&self) -> &[u64] {
        &self.buf[self.nw + 2 * self.aw..self.nw + 3 * self.aw]
    }

    #[inline]
    fn acc_any_mut(&mut self) -> &mut [u64] {
        &mut self.buf[self.nw + 2 * self.aw..self.nw + 3 * self.aw]
    }

    /// Per label slot: OR of the matching children's `values` (flat,
    /// `slots × aw`).
    #[inline]
    fn acc(&self) -> &[u64] {
        &self.buf[self.nw + 3 * self.aw..]
    }

    #[inline]
    fn acc_mut(&mut self) -> &mut [u64] {
        &mut self.buf[self.nw + 3 * self.aw..]
    }

    #[inline]
    fn acc_slot(&self, slot: u32) -> &[u64] {
        let at = self.nw + (3 + slot as usize) * self.aw;
        &self.buf[at..at + self.aw]
    }

    #[inline]
    fn acc_slot_mut(&mut self, slot: u32) -> &mut [u64] {
        let at = self.nw + (3 + slot as usize) * self.aw;
        &mut self.buf[at..at + self.aw]
    }
}

/// Everything one query carries through a compiled traversal: its IR, label
/// translation, optional index with lazily-built bitset pruning tables, its
/// `cans` arena (vertices + edge pool), statistics and scratch pools.
pub(crate) struct QueryRuntime<'a> {
    cm: Arc<CompiledMfa>,
    cols: ColumnMap,
    index: Option<&'a ReachabilityIndex>,
    /// Per document label: bitset of NFA states from which a final state is
    /// reachable using only transitions the DTD allows below that label.
    nfa_accept_below: HashMap<LabelId, Box<[u64]>>,
    /// Per document label: bitset (global AFA numbering) of filter states
    /// whose value could possibly be true inside such a subtree.
    afa_true_below: HashMap<LabelId, Box<[u64]>>,
    pub cans: Vec<CansVertex>,
    /// `(target, next)` edge pool; its length is the `cans_edges` statistic.
    pub edges: Vec<(u32, u32)>,
    pub stats: HypeStats,
    free_locals: Vec<LocalScratch>,
    /// Value-evaluation scratch (one row each), cleared per close.
    computed: Vec<u64>,
    in_progress: Vec<u64>,
    /// Cached kernel selection ([`bits::kernel`]): `true` runs the fused
    /// step-then-close row pass over `req_closure_rows`, `false` the
    /// original per-entry `req_transitions` scan (the differential oracle).
    fused: bool,
}

impl<'a> QueryRuntime<'a> {
    pub fn new(
        doc_labels: &LabelInterner,
        compiled: Arc<CompiledMfa>,
        index: Option<&'a ReachabilityIndex>,
    ) -> Self {
        let cols = ColumnMap::new(&compiled, doc_labels);
        let aw = compiled.afa_words();
        QueryRuntime {
            cols,
            index,
            nfa_accept_below: HashMap::new(),
            afa_true_below: HashMap::new(),
            cans: Vec::new(),
            edges: Vec::new(),
            stats: HypeStats::default(),
            free_locals: Vec::new(),
            computed: vec![0; aw],
            in_progress: vec![0; aw],
            fused: bits::kernel() == bits::Kernel::Wide,
            cm: compiled,
        }
    }

    /// Covers document labels interned after construction (the streaming
    /// engine interns labels as they first appear on `Open` events).
    pub fn extend_labels(&mut self, doc_labels: &LabelInterner) {
        self.cols.extend(&self.cm, doc_labels);
    }

    fn alloc_local(&mut self) -> LocalScratch {
        match self.free_locals.pop() {
            Some(mut sc) => {
                sc.reset();
                sc
            }
            None => LocalScratch::sized(&self.cm),
        }
    }

    fn free_local(&mut self, sc: LocalScratch) {
        self.free_locals.push(sc);
    }

    // -----------------------------------------------------------------------
    // OptHyPE pruning (bitset tables).
    // -----------------------------------------------------------------------

    /// `true` if this query can skip the subtree rooted at a child labelled
    /// `child_label`, given the child's ε-closed pending NFA states and its
    /// *closed* pending filter states. Closing the requests first is
    /// equivalent to the interpreted engine's unclosed check: operator
    /// states propagate "maybe true" from their successors, so a request is
    /// all-false exactly when its whole operator closure is.
    pub fn can_skip(
        &mut self,
        child_label: LabelId,
        child_mstates: &[u64],
        closed_requests: &[u64],
    ) -> bool {
        let Some(index) = self.index else {
            return false;
        };
        if index.allowed_below(child_label).is_none() {
            return false; // label unknown to the DTD: no pruning information
        }
        if !self.nfa_accept_below.contains_key(&child_label) {
            let table = self.compute_nfa_accept_below(child_label);
            self.nfa_accept_below.insert(child_label, table);
        }
        if bits::intersects(child_mstates, &self.nfa_accept_below[&child_label]) {
            return false;
        }
        if !bits::any(closed_requests) {
            return true;
        }
        if !self.afa_true_below.contains_key(&child_label) {
            let table = self.compute_afa_true_below(child_label);
            self.afa_true_below.insert(child_label, table);
        }
        !bits::intersects(closed_requests, &self.afa_true_below[&child_label])
    }

    fn compute_nfa_accept_below(&self, label: LabelId) -> Box<[u64]> {
        let index = self.index.expect("called only with an index");
        let allowed = index
            .allowed_below(label)
            .expect("caller checked the label is known")
            .to_vec();
        let cm = &self.cm;
        let n = cm.nfa_state_count();
        let mut can = vec![0u64; cm.nfa_words()];
        for s in 0..n {
            if cm.is_final(s) {
                bits::set(&mut can, s);
            }
        }
        loop {
            let mut changed = false;
            for s in 0..n {
                if bits::test(&can, s) {
                    continue;
                }
                let reach = cm.eps_targets(s).iter().any(|&t| bits::test(&can, t))
                    || cm.raw_transitions(s).iter().any(|&(l, tgt)| {
                        label_allowed_below(l, &allowed) && bits::test(&can, tgt)
                    });
                if reach {
                    bits::set(&mut can, s);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        can.into_boxed_slice()
    }

    fn compute_afa_true_below(&self, label: LabelId) -> Box<[u64]> {
        let index = self.index.expect("called only with an index");
        let allowed = index
            .allowed_below(label)
            .expect("caller checked the label is known")
            .to_vec();
        let cm = &self.cm;
        let total = cm.afa_state_count();
        let mut maybe = vec![0u64; cm.afa_words()];
        for g in 0..total {
            if matches!(
                cm.op(g),
                CompiledAfaState::Final(_) | CompiledAfaState::Not(_)
            ) {
                bits::set(&mut maybe, g);
            }
        }
        loop {
            let mut changed = false;
            for g in 0..total {
                if bits::test(&maybe, g) {
                    continue;
                }
                let reach = match cm.op(g) {
                    CompiledAfaState::And { from, to } | CompiledAfaState::Or { from, to } => cm
                        .succ_pool()[*from as usize..*to as usize]
                        .iter()
                        .any(|&s| bits::test(&maybe, s)),
                    CompiledAfaState::Not(_) | CompiledAfaState::Final(_) => true,
                    CompiledAfaState::Trans { label: l, tgt } => {
                        label_allowed_below(*l, &allowed) && bits::test(&maybe, *tgt)
                    }
                };
                if reach {
                    bits::set(&mut maybe, g);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        maybe.into_boxed_slice()
    }

    // -----------------------------------------------------------------------
    // Bottom-up filter evaluation.
    // -----------------------------------------------------------------------

    /// Computes `X(node, state)` for every filter state in `sc.closure`,
    /// reading the children's values from the accumulators and leaving the
    /// true states set in `sc.values`. Evaluation order — ascending global
    /// id, successor lists in builder order, short-circuiting AND/OR, least
    /// fix-point false on ε-cycles — replicates the interpreted engine
    /// exactly, so the memoised values (and the `afa_values_computed`
    /// statistic) are bit-identical.
    fn compute_values(&mut self, node_text: Option<&str>, sc: &mut LocalScratch) {
        bits::clear(&mut self.computed);
        bits::clear(&mut self.in_progress);
        // The closure word is copied out (not iterated with `bits::ones`)
        // because `value_of` needs `sc` mutably for the memoised values.
        for wi in 0..sc.aw {
            let mut w = sc.closure()[wi];
            while w != 0 {
                let g = wi as u32 * 64 + w.trailing_zeros();
                w &= w - 1;
                value_of(
                    &self.cm,
                    g,
                    node_text,
                    &mut self.computed,
                    &mut self.in_progress,
                    sc,
                    &mut self.stats,
                );
            }
        }
    }
}

/// Whether a transition on `label` (or [`ANY_LABEL`]) may fire inside a
/// subtree whose DTD-allowed label bitset is `allowed`.
#[inline]
fn label_allowed_below(label: u32, allowed: &[u64]) -> bool {
    if label == ANY_LABEL {
        return true;
    }
    let bit = label as usize;
    allowed
        .get(bit / 64)
        .map(|w| w & (1 << (bit % 64)) != 0)
        .unwrap_or(false)
}

/// Recursive memoised evaluation of one filter variable; see
/// [`QueryRuntime::compute_values`] for the order contract.
fn value_of(
    cm: &CompiledMfa,
    g: u32,
    node_text: Option<&str>,
    computed: &mut [u64],
    in_progress: &mut [u64],
    sc: &mut LocalScratch,
    stats: &mut HypeStats,
) -> bool {
    if bits::test(computed, g) {
        return bits::test(sc.values(), g);
    }
    if bits::test(in_progress, g) {
        // ε-cycle among operator states (degenerate `(.)*` filters):
        // the least fix-point is false.
        return false;
    }
    bits::set(in_progress, g);
    stats.afa_values_computed += 1;
    let value = match cm.op(g) {
        CompiledAfaState::Final(pred) => match pred {
            FinalPredicate::True => true,
            FinalPredicate::False => false,
            FinalPredicate::TextEq(value) => node_text == Some(value.as_str()),
        },
        CompiledAfaState::Not(x) => {
            !value_of(cm, *x, node_text, computed, in_progress, sc, stats)
        }
        CompiledAfaState::And { from, to } => cm.succ_pool()[*from as usize..*to as usize]
            .iter()
            .all(|&c| value_of(cm, c, node_text, computed, in_progress, sc, stats)),
        CompiledAfaState::Or { from, to } => cm.succ_pool()[*from as usize..*to as usize]
            .iter()
            .any(|&c| value_of(cm, c, node_text, computed, in_progress, sc, stats)),
        CompiledAfaState::Trans { label, tgt } => {
            if *label == ANY_LABEL {
                bits::test(sc.acc_any(), *tgt)
            } else {
                match cm.slot_of_label(*label) {
                    Some(slot) => bits::test(sc.acc_slot(slot), *tgt),
                    None => false,
                }
            }
        }
    };
    bits::unset(in_progress, g);
    bits::set(computed, g);
    if value {
        bits::set(sc.values_mut(), g);
    }
    value
}

// ---------------------------------------------------------------------------
// The shared traversal core.
// ---------------------------------------------------------------------------

/// One query's live state at an open node.
struct CoreLocal {
    query: u32,
    /// Index of this query's local in the parent frame, `u32::MAX` at the
    /// evaluation context (whose entry vertex becomes the `Init` set).
    parent_slot: u32,
    /// Accumulator slot of this node's label column for this query
    /// (`u32::MAX` when no filter transition mentions the label).
    slot: u32,
    scratch: LocalScratch,
}

/// Per-node frame: the per-query locals of every query with work here.
#[derive(Default)]
struct CoreFrame {
    locals: Vec<CoreLocal>,
}

/// One query's share of a context-frame snapshot: the ε-closed pending NFA
/// states and the closed filter requests (λ triggers included) at the
/// evaluation context, exactly as a child open would read them.
#[derive(Debug, Clone)]
pub(crate) struct ContextSeed {
    query: u32,
    mstates: Vec<u64>,
    closure: Vec<u64>,
}

/// One query's artefacts from one shard walk (see
/// [`HypeCore::into_shard_outputs`]).
#[derive(Debug)]
pub(crate) struct ShardQueryOutput {
    /// Number of context placeholder vertices at the front of `cans`.
    pub context_vertices: u32,
    /// The shard arena: context placeholders, then the subtree's vertices
    /// in the same DFS order a sequential walk would have appended them.
    pub cans: Vec<CansVertex>,
    /// The shard's edge pool (context→child and subtree-internal edges).
    pub edges: Vec<(u32, u32)>,
    /// Visit and filter-evaluation counters of the subtree only.
    pub stats: HypeStats,
    /// Wildcard-accumulator row for the real context frame.
    pub acc_any: Vec<u64>,
    /// Per-label-slot accumulator rows for the real context frame.
    pub acc: Vec<u64>,
}

impl ShardQueryOutput {
    /// Grafts a re-split child unit's arena into this *spine* unit, making
    /// the combined output indistinguishable from one worker having walked
    /// the whole spine subtree alone.
    ///
    /// `self` is a spine unit fresh out of [`HypeCore::into_shard_outputs`]:
    /// `context_vertices` parent-seed placeholders, then exactly
    /// `sub.context_vertices` vertices for the spine node itself (the spine
    /// core opened only that node before its children were farmed out). The
    /// child unit `sub` was seeded from the spine's frame, so its first
    /// `sub.context_vertices` vertices are placeholders for those same spine
    /// vertices. Grafting appends `sub`'s subtree vertices and edges with
    /// their ids shifted, and splices each placeholder's edge list onto the
    /// corresponding spine vertex. Edge-list order within a vertex is
    /// irrelevant to collection (reachability over a set), so arrival order
    /// of child units does not affect answers or any counter.
    pub fn graft_child_unit(&mut self, sub: &ShardQueryOutput) {
        let k = sub.context_vertices as usize;
        let base = self.context_vertices as usize;
        debug_assert!(self.cans.len() >= base + k, "spine vertices are present");
        // Ids `< k` in `sub` are spine placeholders → spine vertices at
        // `base..base + k`; ids `>= k` are subtree vertices → appended after
        // the current arena end.
        let dv = (self.cans.len() - k) as u32;
        let de = self.edges.len() as u32;
        for &(target, next) in &sub.edges {
            let target = if (target as usize) < k {
                base as u32 + target
            } else {
                target + dv
            };
            let next = if next == NO_EDGE { NO_EDGE } else { next + de };
            self.edges.push((target, next));
        }
        for v in &sub.cans[k..] {
            self.cans.push(CansVertex {
                node: v.node,
                is_final: v.is_final,
                valid: v.valid,
                edge_head: if v.edge_head == NO_EDGE {
                    NO_EDGE
                } else {
                    v.edge_head + de
                },
            });
        }
        // Splice each placeholder's (copied) edge list onto its spine
        // vertex: walk the copied list to its tail and chain the spine
        // vertex's existing list behind it.
        for j in 0..k {
            let head = sub.cans[j].edge_head;
            if head == NO_EDGE {
                continue;
            }
            let mut e = head + de;
            loop {
                let next = self.edges[e as usize].1;
                if next == NO_EDGE {
                    break;
                }
                e = next;
            }
            self.edges[e as usize].1 = self.cans[base + j].edge_head;
            self.cans[base + j].edge_head = head + de;
        }
        self.stats.nodes_visited += sub.stats.nodes_visited;
        self.stats.afa_values_computed += sub.stats.afa_values_computed;
    }
}

/// One query's context block from the main core of a parallel run (see
/// [`HypeCore::into_context_parts`]).
#[derive(Debug)]
pub(crate) struct ContextBlock {
    /// The context vertices (ids `0..k`, shared with every shard arena).
    pub cans: Vec<CansVertex>,
    /// The context's ε edges.
    pub edges: Vec<(u32, u32)>,
    /// The context's own counters (one visit, its filter evaluations).
    pub stats: HypeStats,
    /// The `Init` vertex set.
    pub init: Vec<u32>,
}

/// The compiled evaluation core: a stack machine over `open`/`close` whose
/// drivers are the recursive tree walk ([`crate::batch`]) and the XML event
/// loop ([`crate::stream`]).
pub(crate) struct HypeCore<'a> {
    pub runtimes: Vec<QueryRuntime<'a>>,
    frames: Vec<CoreFrame>,
    free_frames: Vec<CoreFrame>,
    /// Nodes for which a frame was created (each counted once however many
    /// queries are pending there).
    pub physical_visits: usize,
    init_of: Vec<Vec<u32>>,
}

impl<'a> HypeCore<'a> {
    pub fn new(runtimes: Vec<QueryRuntime<'a>>) -> Self {
        let queries = runtimes.len();
        HypeCore {
            runtimes,
            frames: Vec::new(),
            free_frames: Vec::new(),
            physical_visits: 0,
            init_of: vec![Vec::new(); queries],
        }
    }

    /// Number of live frames (for the streaming engine's observability).
    pub fn frame_count(&self) -> usize {
        self.frames.len()
    }

    /// Propagates labels interned after construction to every runtime.
    pub fn extend_labels(&mut self, doc_labels: &LabelInterner) {
        for rt in &mut self.runtimes {
            rt.extend_labels(doc_labels);
        }
    }

    /// Opens `node`: decides per query whether it has work here (pruning
    /// exactly as the interpreted engine does), and if any has, builds the
    /// frame — vertices, ε and parent edges, request closures. Returns
    /// `false` when **every** query prunes the subtree, in which case no
    /// frame exists and the driver must skip the subtree without calling
    /// [`Self::close`].
    pub fn open(&mut self, node: NodeId, label: LabelId) -> bool {
        let mut frame = self.free_frames.pop().unwrap_or_default();
        debug_assert!(frame.locals.is_empty());

        if let Some(parent) = self.frames.last() {
            for (pi, pl) in parent.locals.iter().enumerate() {
                let rt = &mut self.runtimes[pl.query as usize];
                let col = rt.cols.col(label);
                let mut sc = rt.alloc_local();

                // Child mstates: step every pending state on the column and
                // ε-close, all via precompiled rows.
                for s in bits::ones(pl.scratch.mstates()) {
                    bits::or_into(sc.mstates_mut(), rt.cm.step_closure(s, col));
                }
                // Closed filter requests propagated through matching
                // transition states.
                let mask = rt.cm.req_mask(col);
                let p_closure = pl.scratch.closure();
                if bits::intersects(mask, p_closure) {
                    if rt.fused {
                        // Fused row pass: AND the column mask against the
                        // parent closure, and for every hit OR the
                        // precomputed `req_closure` row found by popcount
                        // rank — one contiguous table walk, no per-entry
                        // bit probing or `op_closure` indirection.
                        let aw = rt.cm.afa_words();
                        let rows = rt.cm.req_closure_rows(col);
                        let dst = sc.closure_mut();
                        let mut base = 0u32;
                        for (wi, &mw) in mask.iter().enumerate() {
                            let mut hits = mw & p_closure[wi];
                            while hits != 0 {
                                let b = hits.trailing_zeros();
                                hits &= hits - 1;
                                let idx =
                                    (base + (mw & ((1u64 << b) - 1)).count_ones()) as usize;
                                bits::or_into(dst, &rows[idx * aw..(idx + 1) * aw]);
                            }
                            base += mw.count_ones();
                        }
                    } else {
                        // Scalar oracle: the original per-entry scan.
                        for &(g, tgt) in rt.cm.req_transitions(col) {
                            if bits::test(p_closure, g) {
                                bits::or_into(sc.closure_mut(), rt.cm.op_closure(tgt));
                            }
                        }
                    }
                }
                if !bits::any(sc.mstates()) && !bits::any(sc.closure()) {
                    rt.free_local(sc); // basic pruning: nothing can happen below
                    continue;
                }
                if rt.can_skip(label, sc.mstates(), sc.closure()) {
                    rt.free_local(sc); // index pruning: pending work is dead
                    continue;
                }
                rt.stats.nodes_visited += 1;

                // λ triggers: filters started by states assumed here.
                add_triggers(&rt.cm, &mut sc);
                // Vertices and within-node ε edges.
                build_vertices(&mut rt.cans, &mut rt.edges, &rt.cm, node, &mut sc);
                // Edges from the parent's vertices into this node's states.
                for (kp, sp) in bits::ones(pl.scratch.mstates()).enumerate() {
                    let vp = pl.scratch.vertex_base + kp as u32;
                    for &tgt in rt.cm.step_targets(sp, col) {
                        if bits::test(sc.mstates(), tgt) {
                            let to = sc.vertex_base + bits::rank(sc.mstates(), tgt);
                            push_edge(&mut rt.cans, &mut rt.edges, vp, to);
                        }
                    }
                }

                frame.locals.push(CoreLocal {
                    query: pl.query,
                    parent_slot: pi as u32,
                    slot: rt.cm.slot_of_label(col).unwrap_or(u32::MAX),
                    scratch: sc,
                });
            }
        } else {
            // The evaluation context: every query starts here with its NFA
            // start state and no pending filter requests — never pruned.
            for (query, rt) in self.runtimes.iter_mut().enumerate() {
                let mut sc = rt.alloc_local();
                bits::or_into(sc.mstates_mut(), rt.cm.state_closure(rt.cm.start()));
                rt.stats.nodes_visited += 1;
                add_triggers(&rt.cm, &mut sc);
                build_vertices(&mut rt.cans, &mut rt.edges, &rt.cm, node, &mut sc);
                frame.locals.push(CoreLocal {
                    query: query as u32,
                    parent_slot: u32::MAX,
                    slot: u32::MAX,
                    scratch: sc,
                });
            }
        }

        if frame.locals.is_empty() {
            self.free_frames.push(frame);
            return false;
        }
        self.physical_visits += 1;
        self.frames.push(frame);
        true
    }

    /// Closes the innermost open node: evaluates the pending filter states
    /// bottom-up from the accumulated child values, invalidates `cans`
    /// vertices whose filter failed, and hands this node's values up to the
    /// parent frame's accumulators (or records the `Init` vertices at the
    /// evaluation context).
    pub fn close(&mut self, node_text: Option<&str>) {
        let mut frame = self.frames.pop().expect("close() without a matching open()");
        for mut local in frame.locals.drain(..) {
            let q = local.query as usize;
            let rt = &mut self.runtimes[q];
            rt.compute_values(node_text, &mut local.scratch);

            // Invalidate vertices whose λ-annotated filter is false here.
            for (k, s) in bits::ones(local.scratch.mstates()).enumerate() {
                if let Some(g) = rt.cm.afa_start_of(s) {
                    if !bits::test(local.scratch.values(), g) {
                        rt.cans[local.scratch.vertex_base as usize + k].valid = false;
                    }
                }
            }

            if local.parent_slot == u32::MAX {
                // Evaluation context: its entry state is the NFA start.
                let start = rt.cm.start();
                debug_assert!(bits::test(local.scratch.mstates(), start));
                self.init_of[q] = vec![
                    local.scratch.vertex_base + bits::rank(local.scratch.mstates(), start),
                ];
            } else {
                let parent = self
                    .frames
                    .last_mut()
                    .expect("non-context frame has a parent");
                let psc = &mut parent.locals[local.parent_slot as usize].scratch;
                bits::or_into(psc.acc_any_mut(), local.scratch.values());
                if local.slot != u32::MAX {
                    bits::or_into(psc.acc_slot_mut(local.slot), local.scratch.values());
                }
            }
            rt.free_local(local.scratch);
        }
        self.free_frames.push(frame);
    }

    // -----------------------------------------------------------------------
    // Shard support for the parallel evaluator (`crate::parallel`).
    //
    // A parallel run opens the evaluation context on the calling thread,
    // snapshots the context frame's per-query state (`context_seeds`), and
    // hands each top-level subtree to a worker that replays the context
    // frame into its own core (`seed_context_frame`), walks the subtree
    // with the exact sequential `open`/`close` logic, and surrenders its
    // per-query artefacts (`into_shard_outputs`). The main thread ORs every
    // shard's accumulator rows back into the real context frame
    // (`absorb_child_values`), closes the context, and merges.
    // -----------------------------------------------------------------------

    /// Snapshots the per-query state of the innermost open frame — the
    /// evaluation context, immediately after [`Self::open`] — for seeding
    /// shard cores. The snapshot is stable: walking children only mutates
    /// the frame's *accumulators*, never its `mstates`/`closure`.
    pub fn context_seeds(&self) -> Vec<ContextSeed> {
        let frame = self.frames.last().expect("context frame is open");
        frame
            .locals
            .iter()
            .map(|l| ContextSeed {
                query: l.query,
                mstates: l.scratch.mstates().to_vec(),
                closure: l.scratch.closure().to_vec(),
            })
            .collect()
    }

    /// The query ids of the innermost open frame's locals, in frame order.
    /// Position `i` in the returned list is the index
    /// [`Self::absorb_child_values`] expects for query `ids[i]` on this
    /// core — the shard re-splitter needs this for *spine* frames, where
    /// pruned queries drop out and frame positions stop matching global
    /// query ids.
    pub fn frame_query_ids(&self) -> Vec<u32> {
        let frame = self.frames.last().expect("a frame is open");
        frame.locals.iter().map(|l| l.query).collect()
    }

    /// Replays a context-frame snapshot into this (fresh) core, pushing one
    /// *placeholder* vertex per pending context state into each query's
    /// `cans` arena so shard-local vertex ids line up with the sequential
    /// numbering (context block first, then the subtree).
    ///
    /// Placeholders are never answer-bearing (`is_final = false` — the main
    /// core's real context vertices report the context node) and never
    /// invalidated (the shard never closes the context); the context ε
    /// edges, λ triggers, visit statistics and physical-visit count all
    /// stay with the main core, so nothing is double-counted.
    pub fn seed_context_frame(&mut self, node: NodeId, seeds: &[ContextSeed]) {
        debug_assert!(self.frames.is_empty(), "seed only a fresh core");
        // A context-frame snapshot covers every query; a *spine*-frame
        // snapshot (shard re-splitting) may cover a subset — queries pruned
        // at the spine node simply have no work in the whole subtree.
        debug_assert!(seeds.len() <= self.runtimes.len());
        debug_assert!(
            seeds.windows(2).all(|w| w[0].query < w[1].query),
            "seeds are in ascending query order"
        );
        let mut frame = self.free_frames.pop().unwrap_or_default();
        for seed in seeds {
            let rt = &mut self.runtimes[seed.query as usize];
            let mut sc = rt.alloc_local();
            sc.mstates_mut().copy_from_slice(&seed.mstates);
            sc.closure_mut().copy_from_slice(&seed.closure);
            sc.vertex_base = rt.cans.len() as u32;
            for _ in 0..bits::count(sc.mstates()) {
                rt.cans.push(CansVertex {
                    node,
                    is_final: false,
                    valid: true,
                    edge_head: NO_EDGE,
                });
            }
            frame.locals.push(CoreLocal {
                query: seed.query,
                parent_slot: u32::MAX,
                slot: u32::MAX,
                scratch: sc,
            });
        }
        self.frames.push(frame);
    }

    /// ORs one shard's context-accumulator contribution for the query at
    /// frame position `query` into the innermost open frame. At the real
    /// context frame, positions coincide with global query ids; at a spine
    /// frame use [`Self::frame_query_ids`] to translate. OR is commutative
    /// and idempotent per bit, so
    /// shard arrival order is irrelevant — the merged rows are bit-identical
    /// to what a sequential walk of all children would have accumulated.
    pub fn absorb_child_values(&mut self, query: usize, acc_any: &[u64], acc: &[u64]) {
        let frame = self.frames.last_mut().expect("context frame is open");
        let sc = &mut frame.locals[query].scratch;
        bits::or_into(sc.acc_any_mut(), acc_any);
        bits::or_into(sc.acc_mut(), acc);
    }

    /// Consumes a shard core after its subtree walk: pops the seeded
    /// context frame and returns each query's shard artefacts — the `cans`
    /// arena (context placeholders first), edge pool, statistics, and the
    /// accumulator rows destined for the real context frame — plus the
    /// shard's physical visit count.
    pub fn into_shard_outputs(mut self) -> (Vec<ShardQueryOutput>, usize) {
        let mut frame = self.frames.pop().expect("seeded context frame is open");
        debug_assert!(self.frames.is_empty(), "subtree walk left frames open");
        // The seeded frame may cover a query subset (spine frames): slot
        // each local by its query id so the outputs stay one-per-runtime.
        let mut locals: Vec<Option<CoreLocal>> =
            (0..self.runtimes.len()).map(|_| None).collect();
        for local in frame.locals.drain(..) {
            let q = local.query as usize;
            debug_assert!(locals[q].is_none());
            locals[q] = Some(local);
        }
        let mut out = Vec::with_capacity(self.runtimes.len());
        for (local, rt) in locals.into_iter().zip(self.runtimes) {
            let aw = rt.cm.afa_words();
            let slots = rt.cm.slot_count() as usize;
            out.push(match local {
                Some(local) => ShardQueryOutput {
                    context_vertices: bits::count(local.scratch.mstates()) as u32,
                    cans: rt.cans,
                    edges: rt.edges,
                    stats: rt.stats,
                    acc_any: local.scratch.acc_any().to_vec(),
                    acc: local.scratch.acc().to_vec(),
                },
                // Query absent from the seeding (pruned at a spine node):
                // nothing was walked for it, so its artefacts are empty and
                // its accumulator rows all-zero.
                None => ShardQueryOutput {
                    context_vertices: 0,
                    cans: rt.cans,
                    edges: rt.edges,
                    stats: rt.stats,
                    acc_any: vec![0; aw],
                    acc: vec![0; slots * aw],
                },
            });
        }
        (out, self.physical_visits)
    }

    /// Consumes the main core of a parallel run after the context closed:
    /// per query, the context-block `cans`/edges/statistics and the `Init`
    /// vertices, plus the context's physical visit count.
    pub fn into_context_parts(self) -> (Vec<ContextBlock>, usize) {
        debug_assert!(self.frames.is_empty(), "context must be closed first");
        let mut blocks = Vec::with_capacity(self.runtimes.len());
        for (query, rt) in self.runtimes.into_iter().enumerate() {
            blocks.push(ContextBlock {
                cans: rt.cans,
                edges: rt.edges,
                stats: rt.stats,
                init: self.init_of[query].clone(),
            });
        }
        (blocks, self.physical_visits)
    }

    /// Consumes the core: collects each query's answers from its `cans` DAG
    /// and finalises statistics. Returns the per-query results plus the
    /// physical and sequential visit counts.
    pub fn into_results(self, nodes_total: usize) -> (Vec<crate::engine::HypeResult>, usize, usize) {
        let mut scratch = CollectScratch::new();
        let mut results = Vec::with_capacity(self.runtimes.len());
        let mut sequential_node_visits = 0;
        for (query, rt) in self.runtimes.into_iter().enumerate() {
            let answers = collect_answers(&rt.cans, &rt.edges, &self.init_of[query], &mut scratch);
            let mut stats = rt.stats;
            stats.nodes_total = nodes_total;
            stats.cans_vertices = rt.cans.len();
            stats.cans_edges = rt.edges.len();
            sequential_node_visits += stats.nodes_visited;
            results.push(crate::engine::HypeResult { answers, stats });
        }
        (results, self.physical_visits, sequential_node_visits)
    }
}

/// Appends an edge to a vertex's linked list in the shared edge pool. A free
/// function over the runtime's `cans`/`edges` fields so callers can hold
/// other `QueryRuntime` borrows (notably `&rt.cm`) across the call.
#[inline]
fn push_edge(cans: &mut [CansVertex], edges: &mut Vec<(u32, u32)>, from_vertex: u32, target: u32) {
    let head = cans[from_vertex as usize].edge_head;
    edges.push((target, head));
    cans[from_vertex as usize].edge_head = (edges.len() - 1) as u32;
}

/// ORs the closed trigger rows of every λ-annotated pending state into the
/// node's filter closure.
fn add_triggers(cm: &CompiledMfa, sc: &mut LocalScratch) {
    let (mstates, closure) = sc.mstates_closure_mut();
    for s in bits::ones(mstates) {
        if cm.afa_start_of(s).is_some() {
            bits::or_into(closure, cm.trigger_row(s));
        }
    }
}

/// Pushes one `cans` vertex per pending state (ascending, so vertex ids are
/// `vertex_base + rank(state)`) and the within-node ε edges.
fn build_vertices(
    cans: &mut Vec<CansVertex>,
    edges: &mut Vec<(u32, u32)>,
    cm: &CompiledMfa,
    node: NodeId,
    sc: &mut LocalScratch,
) {
    sc.vertex_base = cans.len() as u32;
    for s in bits::ones(sc.mstates()) {
        cans.push(CansVertex {
            node,
            is_final: cm.is_final(s),
            valid: true,
            edge_head: NO_EDGE,
        });
    }
    for (k, s) in bits::ones(sc.mstates()).enumerate() {
        let from = sc.vertex_base + k as u32;
        for &t in cm.eps_targets(s) {
            if bits::test(sc.mstates(), t) {
                let to = sc.vertex_base + bits::rank(sc.mstates(), t);
                push_edge(cans, edges, from, to);
            }
        }
    }
}
