//! Per-query evaluation state shared by the tree-walking batch engine
//! ([`crate::batch`]) and the event-driven streaming engine
//! ([`crate::stream`]).
//!
//! Everything HyPE computes *at one node* — the `cans` vertices, the
//! request closure, the OptHyPE pruning decision, the bottom-up Boolean
//! values `X(node, state)` — depends only on the node's label, its text,
//! and its children's labels and already-computed values. This module holds
//! that per-node math in a tree-agnostic form (labels and text are passed
//! in, never looked up), so the two traversal drivers cannot drift apart:
//! a recursive DFS over an arena and a stack machine over `Open`/`Text`/
//! `Close` events both call the exact same code and therefore produce
//! identical answers *and* identical [`HypeStats`].

use std::collections::{BTreeSet, HashMap};

use smoqe_automata::{
    AfaId, AfaState, AfaStateId, FinalPredicate, LabelMap, Mfa, StateId, Transition,
};
use smoqe_xml::{LabelId, LabelInterner, NodeId};

use crate::batch::BatchQuery;
use crate::engine::HypeStats;
use crate::index::ReachabilityIndex;

/// Boolean filter variables `X(node, state)` computed at one node.
pub(crate) type AfaValues = HashMap<(AfaId, AfaStateId), bool>;

/// One vertex of a query's candidate-answer DAG `cans`.
#[derive(Debug)]
pub(crate) struct CansVertex {
    /// The document node the vertex stands for. In the streaming engine
    /// this is the node's pre-order index (see `crate::stream`).
    pub node: NodeId,
    pub is_final: bool,
    /// `false` once the state's AFA evaluated to false at `node`.
    pub valid: bool,
    pub edges: Vec<u32>,
}

/// Phase 2 of HyPE: traverse `cans` from the initial vertices through valid
/// vertices only, collecting the nodes attached to final states.
pub(crate) fn collect_answers(cans: &[CansVertex], init_vertices: &[u32]) -> BTreeSet<NodeId> {
    let mut answers = BTreeSet::new();
    let mut seen = vec![false; cans.len()];
    let mut stack: Vec<u32> = init_vertices
        .iter()
        .filter(|&&v| cans[v as usize].valid)
        .copied()
        .collect();
    for &v in &stack {
        seen[v as usize] = true;
    }
    while let Some(v) = stack.pop() {
        let vertex = &cans[v as usize];
        if vertex.is_final {
            answers.insert(vertex.node);
        }
        for &next in &vertex.edges {
            if !seen[next as usize] && cans[next as usize].valid {
                seen[next as usize] = true;
                stack.push(next);
            }
        }
    }
    answers
}

/// Everything one query carries through a traversal: its automaton, label
/// translation, optional index with lazily-built pruning tables, its own
/// `cans` arena and statistics.
pub(crate) struct QueryRuntime<'a> {
    pub mfa: &'a Mfa,
    pub label_map: LabelMap,
    index: Option<&'a ReachabilityIndex>,
    /// Per document label: for every NFA state, whether a final state is
    /// reachable from it using only transitions whose labels may occur
    /// below an element with that label (wildcards always may). Lazily
    /// populated; used by the OptHyPE pruning rule.
    nfa_accept_below: HashMap<LabelId, Vec<bool>>,
    /// Per document label, per AFA, per AFA state: whether the filter value
    /// could possibly be true inside such a subtree (a final or a negation
    /// is reachable through transitions allowed below the label).
    afa_true_below: HashMap<LabelId, Vec<Vec<bool>>>,
    pub cans: Vec<CansVertex>,
    pub stats: HypeStats,
}

impl<'a> QueryRuntime<'a> {
    pub fn new(doc_labels: &LabelInterner, query: &BatchQuery<'a>) -> Self {
        QueryRuntime {
            mfa: query.mfa,
            label_map: LabelMap::new(query.mfa, doc_labels),
            index: query.index,
            nfa_accept_below: HashMap::new(),
            afa_true_below: HashMap::new(),
            cans: Vec::new(),
            stats: HypeStats::default(),
        }
    }

    /// Covers document labels interned after construction (the streaming
    /// engine interns labels as they first appear on `Open` events).
    pub fn extend_labels(&mut self, doc_labels: &LabelInterner) {
        self.label_map.extend(self.mfa, doc_labels);
    }

    /// Closes a set of requested filter states under operator-state
    /// successors (AND/OR/NOT ε-moves stay on the same node).
    pub fn close_requests(
        &self,
        initial: BTreeSet<(AfaId, AfaStateId)>,
    ) -> BTreeSet<(AfaId, AfaStateId)> {
        let mut closure = initial.clone();
        let mut worklist: Vec<(AfaId, AfaStateId)> = initial.into_iter().collect();
        while let Some((afa, q)) = worklist.pop() {
            let successors: Vec<AfaStateId> = match self.mfa.afa(afa).state(q) {
                AfaState::And(v) | AfaState::Or(v) => v.clone(),
                AfaState::Not(x) => vec![*x],
                AfaState::Trans(..) | AfaState::Final(_) => Vec::new(),
            };
            for s in successors {
                if closure.insert((afa, s)) {
                    worklist.push((afa, s));
                }
            }
        }
        closure
    }

    // -----------------------------------------------------------------------
    // OptHyPE pruning.
    // -----------------------------------------------------------------------

    /// `true` if this query can skip the subtree rooted at a child labelled
    /// `child_label`: the DTD guarantees that no selecting-NFA state pending
    /// there can reach a final state, and every pending filter state is
    /// necessarily false.
    pub fn can_skip_subtree(
        &mut self,
        child_label: LabelId,
        entry_states: &[StateId],
        requests: &[(AfaId, AfaStateId)],
    ) -> bool {
        let Some(index) = self.index else {
            return false;
        };
        if index.allowed_below(child_label).is_none() {
            return false; // label unknown to the DTD: no pruning information
        }
        if !self.nfa_accept_below.contains_key(&child_label) {
            let table = self.compute_nfa_accept_below(child_label);
            self.nfa_accept_below.insert(child_label, table);
        }
        let nfa_table = &self.nfa_accept_below[&child_label];
        let closure = self.mfa.nfa().eps_closure(entry_states);
        if closure.iter().any(|s| nfa_table[s.index()]) {
            return false;
        }
        if requests.is_empty() {
            return true;
        }
        if !self.afa_true_below.contains_key(&child_label) {
            let table = self.compute_afa_true_below(child_label);
            self.afa_true_below.insert(child_label, table);
        }
        let afa_table = &self.afa_true_below[&child_label];
        requests
            .iter()
            .all(|&(afa, q)| !afa_table[afa.index()][q.index()])
    }

    /// Whether a label transition may fire inside a subtree whose root
    /// carries `below_label`: wildcards always may, named labels only if the
    /// DTD allows them below that element type.
    fn transition_allowed_below(&self, t: Transition, allowed: &[u64]) -> bool {
        match t {
            Transition::Any => true,
            Transition::Label(l) => {
                let bit = l as usize;
                allowed
                    .get(bit / 64)
                    .map(|w| w & (1 << (bit % 64)) != 0)
                    .unwrap_or(false)
            }
        }
    }

    /// Per NFA state: can a final state be reached using only transitions
    /// that may fire inside a subtree labelled `label`?
    fn compute_nfa_accept_below(&self, label: LabelId) -> Vec<bool> {
        let index = self.index.expect("called only with an index");
        let allowed = index
            .allowed_below(label)
            .expect("caller checked the label is known")
            .to_vec();
        let nfa = self.mfa.nfa();
        let mut can = vec![false; nfa.len()];
        for (id, state) in nfa.states() {
            if state.is_final {
                can[id.index()] = true;
            }
        }
        loop {
            let mut changed = false;
            for (id, state) in nfa.states() {
                if can[id.index()] {
                    continue;
                }
                let reach = state.eps.iter().any(|e| can[e.index()])
                    || state.trans.iter().any(|&(t, tgt)| {
                        self.transition_allowed_below(t, &allowed) && can[tgt.index()]
                    });
                if reach {
                    can[id.index()] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        can
    }

    /// Per AFA state: could its value be true at some node inside a subtree
    /// labelled `label`? Over-approximated: a reachable final state or any
    /// reachable negation makes the answer "maybe".
    fn compute_afa_true_below(&self, label: LabelId) -> Vec<Vec<bool>> {
        let index = self.index.expect("called only with an index");
        let allowed = index
            .allowed_below(label)
            .expect("caller checked the label is known")
            .to_vec();
        let mut out = Vec::with_capacity(self.mfa.afas().len());
        for afa in self.mfa.afas() {
            let mut maybe = vec![false; afa.len()];
            for (id, state) in afa.states() {
                if matches!(state, AfaState::Final(_) | AfaState::Not(_)) {
                    maybe[id.index()] = true;
                }
            }
            loop {
                let mut changed = false;
                for (id, state) in afa.states() {
                    if maybe[id.index()] {
                        continue;
                    }
                    let reach = match state {
                        AfaState::And(v) | AfaState::Or(v) => v.iter().any(|s| maybe[s.index()]),
                        AfaState::Not(_) | AfaState::Final(_) => true,
                        AfaState::Trans(t, tgt) => {
                            self.transition_allowed_below(*t, &allowed) && maybe[tgt.index()]
                        }
                    };
                    if reach {
                        maybe[id.index()] = true;
                        changed = true;
                    }
                }
                if !changed {
                    break;
                }
            }
            out.push(maybe);
        }
        out
    }

    // -----------------------------------------------------------------------
    // Bottom-up filter evaluation.
    // -----------------------------------------------------------------------

    /// Computes the Boolean variables `X(node, state)` for every filter
    /// state in `closure`, given the node's own text and the children's
    /// already-computed values (keyed by each child's document label).
    pub fn compute_values(
        &mut self,
        node_text: Option<&str>,
        closure: &BTreeSet<(AfaId, AfaStateId)>,
        child_values: &[(LabelId, AfaValues)],
    ) -> AfaValues {
        let mut memo: AfaValues = HashMap::with_capacity(closure.len());
        for &(afa, q) in closure {
            let mut in_progress = BTreeSet::new();
            self.value_of(node_text, afa, q, child_values, &mut memo, &mut in_progress);
        }
        memo
    }

    fn value_of(
        &mut self,
        node_text: Option<&str>,
        afa: AfaId,
        q: AfaStateId,
        child_values: &[(LabelId, AfaValues)],
        memo: &mut AfaValues,
        in_progress: &mut BTreeSet<(AfaId, AfaStateId)>,
    ) -> bool {
        if let Some(&v) = memo.get(&(afa, q)) {
            return v;
        }
        if !in_progress.insert((afa, q)) {
            // ε-cycle among operator states (degenerate `(.)*` filters):
            // the least fix-point is false.
            return false;
        }
        self.stats.afa_values_computed += 1;
        let value = match self.mfa.afa(afa).state(q).clone() {
            AfaState::Final(pred) => match pred {
                FinalPredicate::True => true,
                FinalPredicate::False => false,
                FinalPredicate::TextEq(ref value) => node_text == Some(value.as_str()),
            },
            AfaState::Not(x) => !self.value_of(node_text, afa, x, child_values, memo, in_progress),
            AfaState::And(children) => children
                .iter()
                .all(|&c| self.value_of(node_text, afa, c, child_values, memo, in_progress)),
            AfaState::Or(children) => children
                .iter()
                .any(|&c| self.value_of(node_text, afa, c, child_values, memo, in_progress)),
            AfaState::Trans(t, tgt) => child_values.iter().any(|(child_label, values)| {
                self.label_map.matches(t, *child_label)
                    && values.get(&(afa, tgt)).copied().unwrap_or(false)
            }),
        };
        in_progress.remove(&(afa, q));
        memo.insert((afa, q), value);
        value
    }
}
