//! Streaming HyPE: the single-pass evaluator over XML event streams.
//!
//! The paper's central algorithmic claim about HyPE (§6) is that one
//! *top-down* pass over the document suffices — the evaluator never looks
//! at a node twice and never looks sideways. [`StreamHype`] makes that
//! claim literal: it is a **stack machine** driven by the
//! `Open`/`Text`/`Close` events of [`smoqe_xml::stream`], keeping one
//! *frame* per open element on the current root-to-leaf path and nothing
//! else of the document. Memory is `O(depth · |M|)` plus the output
//! (`cans` DAG + answers); no arena tree is ever materialized, which the
//! benchmarks assert via [`smoqe_xml::node_allocations`].
//!
//! The machine shares its entire per-node core with the batched tree
//! engine ([`crate::batch`]): both are drivers over the internal `runtime`
//! stack machine, which runs on the bitset-based
//! [`CompiledMfa`](smoqe_automata::CompiledMfa) execution IR — a frame
//! holds exactly the pooled per-query state the recursive evaluator keeps
//! on the call stack, and pruning works event-side by entering *skip mode*
//! — a dead subtree's events are drained with a depth counter and zero
//! per-query work, the moral equivalent of not recursing.
//! As a consequence, answers and [`HypeStats`](crate::HypeStats) are **identical** to the
//! tree engine's, query by query, in solo and batched modes alike (locked
//! in by the `streaming` integration suite).
//!
//! ## Node identity
//!
//! A stream has no arena, so answers identify nodes by their **pre-order
//! index**: the root's `Open` is node 0, the `k`-th `Open` event overall is
//! node `k`, wrapped in [`NodeId`] for interoperability. For documents
//! built by [`smoqe_xml::parse_document`] — which allocates nodes in
//! exactly that order — streamed answers and tree answers coincide
//! verbatim; for trees built in another order, map ids through the tree's
//! pre-order enumeration.
//!
//! ## Indexes and label interning
//!
//! Labels are interned as they first appear on the stream. OptHyPE(-C)
//! pruning is supported, but a [`ReachabilityIndex`](crate::ReachabilityIndex)
//! is keyed by the label ids of the interner it was built against — so
//! indexed streaming requires seeding the engine with that same interner
//! via [`StreamHype::with_interner`]. The plain-HyPE path needs no seeding.

use std::sync::Arc;

use smoqe_automata::Mfa;
use smoqe_xml::stream::{EventSource, XmlEvent};
use smoqe_xml::{LabelInterner, NodeId, ParseError};

use crate::batch::{BatchQuery, CompiledBatchQuery};
use crate::engine::HypeResult;
use crate::runtime::{HypeCore, QueryRuntime};

/// Aggregate statistics of one streamed evaluation.
///
/// The per-query [`HypeStats`](crate::HypeStats) inside
/// [`StreamResult::results`] follow the same accounting contract as the
/// tree engine; this struct adds the
/// stream-level counters, in particular the **peak frame count** that
/// substantiates the O(depth) memory claim.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Number of queries evaluated.
    pub queries: usize,
    /// Total events consumed (`Open` + `Text` + `Close`).
    pub events: usize,
    /// Number of element nodes in the document (= number of `Open` events).
    pub nodes_total: usize,
    /// Element nodes for which a work frame was created — the size of the
    /// union of the per-query visit sets, identical to
    /// [`BatchStats::nodes_visited`](crate::BatchStats::nodes_visited).
    pub nodes_visited: usize,
    /// Sum of the per-query visit counts — what N sequential solo runs
    /// would have performed.
    pub sequential_node_visits: usize,
    /// Maximum element nesting depth seen on the stream.
    pub peak_depth: usize,
    /// Maximum number of live work frames — bounded by `peak_depth`, and
    /// the whole per-document working set of the evaluator.
    pub peak_frames: usize,
}

impl StreamStats {
    /// How many sequential visits each physical visit amortises
    /// (`sequential / physical`, `1.0` for empty runs).
    pub fn sharing_factor(&self) -> f64 {
        if self.nodes_visited == 0 {
            1.0
        } else {
            self.sequential_node_visits as f64 / self.nodes_visited as f64
        }
    }
}

/// The result of a streamed run: one [`HypeResult`] per query, in input
/// order, plus the stream-level statistics.
#[derive(Debug, Clone)]
pub struct StreamResult {
    /// Per-query answers (pre-order node ids, see the module docs) and
    /// statistics, index-aligned with the input queries.
    pub results: Vec<HypeResult>,
    /// Aggregate statistics of the streamed pass.
    pub stats: StreamStats,
}

/// Pooled text buffer of one open element: a later text run overwrites an
/// earlier one, matching the tree parser's "text attached at close"
/// semantics, and the `String` capacity is recycled across elements so the
/// steady state allocates nothing per text event.
#[derive(Default)]
struct TextEntry {
    has: bool,
    buf: String,
}

/// The streaming HyPE stack machine.
///
/// Feed it a document either by [`Self::run`]ning it over an
/// [`EventSource`], or by pushing events manually through [`Self::open`],
/// [`Self::text`] and [`Self::close`] (for sources the reader cannot wrap,
/// e.g. an async network decoder), then call [`Self::finish`].
///
/// ```
/// use smoqe_automata::compile_query;
/// use smoqe_hype::{BatchQuery, StreamHype};
/// use smoqe_xml::XmlStreamReader;
/// use smoqe_xpath::parse_path;
///
/// let mfa = compile_query(&parse_path("patient/pname").unwrap());
/// let xml = "<hospital><patient><pname>Alice</pname></patient></hospital>";
/// let engine = StreamHype::new(&[BatchQuery::new(&mfa)]);
/// let out = engine.run(&mut XmlStreamReader::new(xml.as_bytes())).unwrap();
/// assert_eq!(out.results[0].answers.len(), 1);
/// assert_eq!(out.stats.peak_frames, 3); // O(depth), not O(document)
/// ```
pub struct StreamHype<'a> {
    /// The compiled evaluation core shared with the tree engine.
    core: HypeCore<'a>,
    /// Grows as labels first appear on the stream.
    labels: LabelInterner,
    /// How many interned labels the runtimes' column maps already cover.
    known_labels: usize,
    /// One pooled text buffer per live work frame.
    texts: Vec<TextEntry>,
    spare_texts: Vec<TextEntry>,
    /// When > 0, the machine is draining a subtree every query pruned:
    /// the count of open elements inside the dead region.
    skip_depth: usize,
    /// Current element nesting depth (including skipped elements).
    depth: usize,
    /// Set once the document root has closed.
    root_done: bool,
    /// Pre-order index handed to the next `Open` event.
    next_preorder: u32,
    events: usize,
    nodes_total: usize,
    peak_depth: usize,
    peak_frames: usize,
}

impl<'a> StreamHype<'a> {
    /// A machine for `queries` with a fresh label interner (plain HyPE; see
    /// the module docs for why indexed queries need
    /// [`Self::with_interner`]). Each query's execution IR is compiled on
    /// entry; use [`Self::from_compiled`] to reuse cached IRs.
    pub fn new(queries: &[BatchQuery<'a>]) -> Self {
        Self::with_interner(queries, LabelInterner::new())
    }

    /// A machine whose label interner is seeded with `labels` — required
    /// when any [`BatchQuery::index`] is set, so the stream's label ids
    /// agree with the ids the [`crate::ReachabilityIndex`] was built over.
    pub fn with_interner(queries: &[BatchQuery<'a>], labels: LabelInterner) -> Self {
        let compiled: Vec<CompiledBatchQuery<'a>> =
            queries.iter().map(BatchQuery::compile).collect();
        Self::from_compiled(&compiled, labels)
    }

    /// A machine over pre-compiled execution IRs (shared via `Arc`, e.g.
    /// from the `smoqe` service cache), with a seeded label interner.
    pub fn from_compiled(queries: &[CompiledBatchQuery<'a>], labels: LabelInterner) -> Self {
        let runtimes: Vec<QueryRuntime> = queries
            .iter()
            .map(|q| QueryRuntime::new(&labels, Arc::clone(&q.compiled), q.index))
            .collect();
        StreamHype {
            core: HypeCore::new(runtimes),
            known_labels: labels.len(),
            labels,
            texts: Vec::new(),
            spare_texts: Vec::new(),
            skip_depth: 0,
            depth: 0,
            root_done: false,
            next_preorder: 0,
            events: 0,
            nodes_total: 0,
            peak_depth: 0,
            peak_frames: 0,
        }
    }

    /// Drives the machine over `source` to exhaustion and returns the
    /// per-query results. Parse/IO errors of the source are propagated; the
    /// evaluation state consumed so far is discarded with the machine.
    pub fn run(mut self, source: &mut impl EventSource) -> Result<StreamResult, ParseError> {
        while let Some(event) = source.next_event()? {
            match event {
                XmlEvent::Open(name) => self.open(name),
                XmlEvent::Text(text) => self.text(text),
                XmlEvent::Close => self.close(),
            }
        }
        Ok(self.finish())
    }

    /// Pushes an element-open event.
    ///
    /// # Panics
    /// Panics if the document root has already closed (event sequences must
    /// describe a single-rooted document).
    pub fn open(&mut self, name: &str) {
        assert!(!self.root_done, "open() after the document root closed");
        self.events += 1;
        self.nodes_total += 1;
        self.next_preorder += 1;
        let node = NodeId(self.next_preorder - 1);
        self.depth += 1;
        self.peak_depth = self.peak_depth.max(self.depth);
        if self.skip_depth > 0 {
            self.skip_depth += 1;
            return;
        }

        let label = self.labels.intern(name);
        if self.labels.len() > self.known_labels {
            self.known_labels = self.labels.len();
            self.core.extend_labels(&self.labels);
        }

        if !self.core.open(node, label) {
            // Every query pruned this subtree (or none was pending): drain
            // its events with a depth counter and zero per-query work.
            self.skip_depth = 1;
            return;
        }
        self.peak_frames = self.peak_frames.max(self.core.frame_count());
        let mut entry = self.spare_texts.pop().unwrap_or_default();
        entry.has = false;
        self.texts.push(entry);
    }

    /// Pushes a text event for the innermost open element. A later text run
    /// of the same element overwrites an earlier one (children in between),
    /// matching the tree parser's "text attached at close" semantics.
    pub fn text(&mut self, text: &str) {
        self.events += 1;
        if self.skip_depth > 0 {
            return;
        }
        if let Some(entry) = self.texts.last_mut() {
            entry.has = true;
            entry.buf.clear();
            entry.buf.push_str(text);
        }
    }

    /// Pushes an element-close event, resolving the innermost frame: the
    /// pending filter states are evaluated bottom-up from the closed
    /// children's values, invalid `cans` vertices are marked, and the
    /// frame's values are handed to its parent.
    ///
    /// # Panics
    /// Panics if no element is open.
    pub fn close(&mut self) {
        self.events += 1;
        assert!(self.depth > 0, "close() with no open element");
        self.depth -= 1;
        if self.skip_depth > 0 {
            self.skip_depth -= 1;
            return;
        }
        let entry = self
            .texts
            .pop()
            .expect("a work frame exists when not skipping");
        let text = if entry.has {
            Some(entry.buf.as_str())
        } else {
            None
        };
        self.core.close(text);
        self.spare_texts.push(entry);
        if self.depth == 0 {
            self.root_done = true;
        }
    }

    /// Consumes the machine and produces the per-query results.
    ///
    /// # Panics
    /// Panics if elements are still open (the event sequence was truncated).
    pub fn finish(self) -> StreamResult {
        assert!(
            self.depth == 0 && self.core.frame_count() == 0,
            "finish() with {} unbalanced open element(s)",
            self.depth
        );
        let queries = self.core.runtimes.len();
        let (results, nodes_visited, sequential_node_visits) =
            self.core.into_results(self.nodes_total);
        StreamResult {
            results,
            stats: StreamStats {
                queries,
                events: self.events,
                nodes_total: self.nodes_total,
                nodes_visited,
                sequential_node_visits,
                peak_depth: self.peak_depth,
                peak_frames: self.peak_frames,
            },
        }
    }

    /// Current number of live work frames (for observability; bounded by
    /// the element nesting depth).
    pub fn live_frames(&self) -> usize {
        self.core.frame_count()
    }
}

/// Evaluates `mfa` over the events of `source` with plain streaming HyPE,
/// returning the solo result plus the stream statistics.
pub fn evaluate_stream(
    source: &mut impl EventSource,
    mfa: &Mfa,
) -> Result<(HypeResult, StreamStats), ParseError> {
    let mut out = StreamHype::new(&[BatchQuery::new(mfa)]).run(source)?;
    let result = out.results.pop().expect("one result per query");
    Ok((result, out.stats))
}

/// Evaluates every query of `queries` over the events of `source` in one
/// streamed pass (the batched front-end; see [`StreamHype`]).
pub fn evaluate_stream_batch(
    source: &mut impl EventSource,
    queries: &[BatchQuery],
) -> Result<StreamResult, ParseError> {
    StreamHype::new(queries).run(source)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{evaluate, evaluate_with_index};
    use crate::index::ReachabilityIndex;
    use smoqe_automata::compile_query;
    use smoqe_xml::hospital::hospital_document_dtd;
    use smoqe_xml::stream::TreeEvents;
    use smoqe_xml::{to_xml_string, XmlStreamReader, XmlTree, XmlTreeBuilder};
    use smoqe_xpath::parse_path;

    /// A small document conforming to the hospital DTD (mirrors the batch
    /// engine's fixture so the differential checks cover the same shapes).
    fn hospital_doc() -> XmlTree {
        let mut b = XmlTreeBuilder::new();
        let root = b.root("hospital");
        let dept = b.child(root, "department");
        b.child_with_text(dept, "name", "Cardiology");
        for (name, diag) in [
            ("Alice", "heart disease"),
            ("Bob", "flu"),
            ("Carol", "heart disease"),
        ] {
            let p = b.child(dept, "patient");
            b.child_with_text(p, "pname", name);
            let addr = b.child(p, "address");
            b.child_with_text(addr, "street", "s");
            b.child_with_text(addr, "city", "c");
            b.child_with_text(addr, "zip", "z");
            let v = b.child(p, "visit");
            b.child_with_text(v, "date", "2006-01-01");
            let t = b.child(v, "treatment");
            let m = b.child(t, "medication");
            b.child_with_text(m, "type", "tablet");
            b.child_with_text(m, "diagnosis", diag);
            let d = b.child(dept, "doctor");
            b.child_with_text(d, "dname", "Dr X");
            b.child_with_text(d, "specialty", "cardiology");
        }
        b.finish()
    }

    /// Maps a tree's node ids to the pre-order indices a stream assigns.
    fn preorder_ids(tree: &XmlTree) -> std::collections::HashMap<NodeId, NodeId> {
        tree.descendants_or_self(tree.root())
            .into_iter()
            .enumerate()
            .map(|(i, n)| (n, NodeId(i as u32)))
            .collect()
    }

    const QUERIES: &[&str] = &[
        "department/patient/pname",
        "//zip",
        "department/patient[visit/treatment/medication/diagnosis/text()='heart disease']",
        "department/doctor[specialty/text()='cardiology']/dname",
        "department/patient[not(visit)]",
        "//diagnosis",
        "department/patient[visit and not(visit/treatment/test)]",
    ];

    #[test]
    fn streamed_answers_and_stats_match_the_tree_engine() {
        let doc = hospital_doc();
        let pre = preorder_ids(&doc);
        for query in QUERIES {
            let mfa = compile_query(&parse_path(query).unwrap());
            let solo = evaluate(&doc, &mfa);
            let mut events = TreeEvents::new(&doc);
            let (streamed, _) = evaluate_stream(&mut events, &mfa).unwrap();
            let expected: std::collections::BTreeSet<NodeId> =
                solo.answers.iter().map(|n| pre[n]).collect();
            assert_eq!(streamed.answers, expected, "answers differ on `{query}`");
            assert_eq!(streamed.stats, solo.stats, "stats differ on `{query}`");
        }
    }

    #[test]
    fn streaming_raw_xml_matches_evaluating_the_parsed_tree() {
        let doc = hospital_doc();
        let xml = to_xml_string(&doc);
        // The parser allocates nodes in pre-order, so ids line up verbatim.
        let reparsed = smoqe_xml::parse_document(&xml).unwrap();
        for query in QUERIES {
            let mfa = compile_query(&parse_path(query).unwrap());
            let solo = evaluate(&reparsed, &mfa);
            let mut reader = XmlStreamReader::new(xml.as_bytes());
            let (streamed, stream_stats) = evaluate_stream(&mut reader, &mfa).unwrap();
            assert_eq!(streamed.answers, solo.answers, "answers differ on `{query}`");
            assert_eq!(streamed.stats, solo.stats, "stats differ on `{query}`");
            assert!(stream_stats.peak_frames <= stream_stats.peak_depth);
            assert_eq!(stream_stats.nodes_total, reparsed.len());
        }
    }

    #[test]
    fn streamed_batch_matches_tree_batch_per_query() {
        let doc = hospital_doc();
        let pre = preorder_ids(&doc);
        let mfas: Vec<_> = QUERIES
            .iter()
            .map(|q| compile_query(&parse_path(q).unwrap()))
            .collect();
        let batch_queries: Vec<BatchQuery> = mfas.iter().map(BatchQuery::new).collect();
        let tree_batch = crate::batch::evaluate_batch(&doc, &batch_queries);
        let mut events = TreeEvents::new(&doc);
        let streamed = evaluate_stream_batch(&mut events, &batch_queries).unwrap();
        assert_eq!(streamed.results.len(), tree_batch.results.len());
        for (i, query) in QUERIES.iter().enumerate() {
            let expected: std::collections::BTreeSet<NodeId> =
                tree_batch.results[i].answers.iter().map(|n| pre[n]).collect();
            assert_eq!(streamed.results[i].answers, expected, "on `{query}`");
            assert_eq!(streamed.results[i].stats, tree_batch.results[i].stats, "on `{query}`");
        }
        assert_eq!(streamed.stats.nodes_visited, tree_batch.stats.nodes_visited);
        assert_eq!(
            streamed.stats.sequential_node_visits,
            tree_batch.stats.sequential_node_visits
        );
        assert_eq!(streamed.stats.nodes_total, tree_batch.stats.nodes_total);
    }

    #[test]
    fn indexed_streaming_matches_opthype_with_a_seeded_interner() {
        let doc = hospital_doc();
        let dtd = hospital_document_dtd();
        let pre = preorder_ids(&doc);
        for query in QUERIES {
            let mfa = compile_query(&parse_path(query).unwrap());
            let index = ReachabilityIndex::new(&mfa, &dtd, doc.labels());
            let solo = evaluate_with_index(&doc, &mfa, &index);
            let engine = StreamHype::with_interner(
                &[BatchQuery::with_index(&mfa, &index)],
                doc.labels().clone(),
            );
            let mut events = TreeEvents::new(&doc);
            let mut out = engine.run(&mut events).unwrap();
            let streamed = out.results.pop().unwrap();
            let expected: std::collections::BTreeSet<NodeId> =
                solo.answers.iter().map(|n| pre[n]).collect();
            assert_eq!(streamed.answers, expected, "answers differ on `{query}`");
            assert_eq!(streamed.stats, solo.stats, "stats differ on `{query}`");
        }
    }

    #[test]
    fn skip_mode_drains_dead_subtrees_without_work() {
        // `doctor` matches nothing below the root's children: every
        // department subtree is skipped after its own Open.
        let doc = hospital_doc();
        let mfa = compile_query(&parse_path("doctor").unwrap());
        let mut events = TreeEvents::new(&doc);
        let (result, stats) = evaluate_stream(&mut events, &mfa).unwrap();
        assert!(result.answers.is_empty());
        assert_eq!(result.stats.nodes_visited, 1, "only the root is visited");
        assert_eq!(stats.nodes_total, doc.len(), "skipped nodes still count");
        assert_eq!(stats.peak_frames, 1);
    }

    #[test]
    fn empty_query_set_streams_to_empty_results() {
        let doc = hospital_doc();
        let mut events = TreeEvents::new(&doc);
        let out = evaluate_stream_batch(&mut events, &[]).unwrap();
        assert!(out.results.is_empty());
        assert_eq!(out.stats.nodes_total, doc.len());
        assert_eq!(out.stats.nodes_visited, 0);
    }

    #[test]
    fn push_api_equals_event_source_api() {
        let mfa = compile_query(&parse_path("a/b[text()='x']").unwrap());
        let mut machine = StreamHype::new(&[BatchQuery::new(&mfa)]);
        machine.open("r");
        machine.open("a");
        machine.open("b");
        machine.text("x");
        machine.close();
        machine.open("b");
        machine.text("y");
        machine.close();
        machine.close();
        machine.close();
        let out = machine.finish();
        assert_eq!(out.results[0].answers.len(), 1);

        let xml = "<r><a><b>x</b><b>y</b></a></r>";
        let mut reader = XmlStreamReader::new(xml.as_bytes());
        let (via_reader, _) = evaluate_stream(&mut reader, &mfa).unwrap();
        assert_eq!(out.results[0].answers, via_reader.answers);
        assert_eq!(out.results[0].stats, via_reader.stats);
    }

    #[test]
    fn mixed_content_text_before_a_child_matches_the_tree_engine() {
        // parse_document drops text that precedes a child element; the
        // streamed path must agree, or `a[text()='x']` would select <a> in
        // the stream but not in the tree.
        let xml = "<r><a>x<b/></a><a>y</a></r>";
        let tree = smoqe_xml::parse_document(xml).unwrap();
        for query in ["a[text()='x']", "a[text()='y']", "a[b]"] {
            let mfa = compile_query(&parse_path(query).unwrap());
            let on_tree = evaluate(&tree, &mfa);
            let mut reader = XmlStreamReader::new(xml.as_bytes());
            let (streamed, _) = evaluate_stream(&mut reader, &mfa).unwrap();
            assert_eq!(streamed.answers, on_tree.answers, "on `{query}`");
            assert_eq!(streamed.stats, on_tree.stats, "on `{query}`");
        }
    }

    #[test]
    fn parse_errors_propagate_and_abort_the_run() {
        let mfa = compile_query(&parse_path("a").unwrap());
        let mut reader = XmlStreamReader::new("<r><a></r>".as_bytes());
        let err = evaluate_stream(&mut reader, &mfa).unwrap_err();
        assert!(matches!(err, ParseError::MismatchedTag { .. }));
    }

    #[test]
    #[should_panic(expected = "unbalanced")]
    fn finish_panics_on_truncated_input() {
        let mfa = compile_query(&parse_path("a").unwrap());
        let mut machine = StreamHype::new(&[BatchQuery::new(&mfa)]);
        machine.open("r");
        let _ = machine.finish();
    }

    #[test]
    fn no_arena_nodes_are_allocated_while_streaming() {
        let doc = hospital_doc();
        let xml = to_xml_string(&doc);
        let mfa = compile_query(&parse_path("//diagnosis").unwrap());
        let before = smoqe_xml::node_allocations();
        let mut reader = XmlStreamReader::new(xml.as_bytes());
        let (result, _) = evaluate_stream(&mut reader, &mfa).unwrap();
        assert_eq!(
            smoqe_xml::node_allocations(),
            before,
            "streaming evaluation must not build an arena tree"
        );
        assert_eq!(result.answers.len(), 3);
    }
}
